#include "util/binary_io.hpp"

#include <cstring>
#include <stdexcept>

#include "util/fmt.hpp"

namespace remgen::util {

void BinaryWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xff));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    u8(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    u8(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void BinaryWriter::str(std::string_view v) {
  u64(v.size());
  bytes(v.data(), v.size());
}

void BinaryWriter::bytes(const void* data, std::size_t n) {
  buffer_.append(static_cast<const char*>(data), n);
}

void BinaryReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw std::runtime_error(util::format("binary: truncated input (need {} bytes at offset {}, "
                                          "have {})",
                                          n, pos_, remaining()));
  }
}

std::uint8_t BinaryReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t BinaryReader::u16() {
  const auto lo = static_cast<std::uint16_t>(u8());
  const auto hi = static_cast<std::uint16_t>(u8());
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(u8()) << shift;
  }
  return v;
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(u8()) << shift;
  }
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  // A length greater than the remaining bytes is corruption, not a short
  // buffer mid-stream; require() produces the loud error either way.
  require(n);
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

void BinaryReader::bytes(void* out, std::size_t n) {
  require(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

std::string_view BinaryReader::view(std::size_t n) {
  require(n);
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint32_t crc32(std::string_view data) {
  // Table generated once per process; the polynomial is the reflected IEEE
  // 802.3 constant, so results match zlib's crc32().
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace remgen::util
