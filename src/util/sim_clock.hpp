// Simulation time. The whole system is driven by a single discrete-event-ish
// clock measured in seconds; components never consult wall time.
#pragma once

#include "util/contracts.hpp"

namespace remgen::util {

/// Monotonic simulation clock (seconds since simulation start).
class SimClock {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// Advances the clock by dt seconds. Requires dt >= 0.
  void advance(double dt) {
    REMGEN_EXPECTS(dt >= 0.0);
    now_s_ += dt;
  }

  /// Resets the clock to zero.
  void reset() noexcept { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace remgen::util
