// Minimal leveled logging. Simulation components log sparingly at Info and
// below; the default level (Warn) keeps test and bench output clean.
#pragma once

#include <optional>
#include <string_view>

#include "util/fmt.hpp"

namespace remgen::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
[[nodiscard]] LogLevel log_level();

/// Parses "trace|debug|info|warn|error|off" (case-sensitive, lowercase).
[[nodiscard]] std::optional<LogLevel> log_level_from_string(std::string_view name);

/// Applies a log level from the command line / environment: scans argv for
/// "--log-level <name>" (also accepts "--log-level=<name>"), falling back to
/// the REMGEN_LOG_LEVEL environment variable. Unknown names are reported on
/// stderr and ignored. Intended for tools and examples.
void init_log_level_from_args(int argc, const char* const* argv);

/// Emits one log line to stderr if `level` passes the global filter. The line
/// is timestamped, level-tagged and written with a single fwrite so
/// concurrent writers cannot interleave partial lines.
void log_message(LogLevel level, std::string_view component, std::string_view message);

/// Formats and emits a log line lazily (arguments are only formatted when the
/// level passes the filter).
template <typename... Args>
void logf(LogLevel level, std::string_view component, std::string_view fmt, const Args&... args) {
  if (level < log_level()) return;
  log_message(level, component, format(fmt, args...));
}

}  // namespace remgen::util
