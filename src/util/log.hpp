// Minimal leveled logging. Simulation components log sparingly at Info and
// below; the default level (Warn) keeps test and bench output clean.
#pragma once

#include <string_view>

#include "util/fmt.hpp"

namespace remgen::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
[[nodiscard]] LogLevel log_level();

/// Emits one log line to stderr if `level` passes the global filter.
void log_message(LogLevel level, std::string_view component, std::string_view message);

/// Formats and emits a log line lazily (arguments are only formatted when the
/// level passes the filter).
template <typename... Args>
void logf(LogLevel level, std::string_view component, std::string_view fmt, const Args&... args) {
  if (level < log_level()) return;
  log_message(level, component, format(fmt, args...));
}

}  // namespace remgen::util
