// Descriptive statistics used by the evaluation harness and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace remgen::util {

/// Single-pass accumulator for mean/variance (Welford) plus min/max.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  OnlineStats();
};

/// Root-mean-square error between predictions and targets (equal, non-empty sizes).
[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute error between predictions and targets (equal, non-empty sizes).
[[nodiscard]] double mae(std::span<const double> predicted, std::span<const double> actual);

/// Arithmetic mean of a non-empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Linearly interpolated percentile of a range; q in [0, 100]. Empty input
/// yields 0 (matching the Percentiles convention) rather than tripping a
/// contract, so latency reports over zero requests stay well-defined.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// The latency-report percentile summary. All zero for empty input.
struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  ///< p99.9 — the far-tail latency figure.
};

/// Linearly interpolated p50/p90/p99/p99.9 of a range (one sort for all).
/// Empty input yields the all-zero summary; a single element is every
/// percentile of itself.
[[nodiscard]] Percentiles percentiles(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with the given number of bins.
class Histogram {
 public:
  /// Builds an empty histogram. Requires lo < hi and bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation; values outside [lo, hi) are counted as under/overflow
  /// and NaN goes to a dedicated bucket (it compares false against both edges,
  /// so letting it reach the bin-index cast would be undefined behaviour).
  void add(double x);

  /// Number of observations in bin i.
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;

  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// Exclusive upper edge of bin i.
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// Observations below the range.
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }

  /// Observations at or above the upper edge.
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }

  /// NaN observations.
  [[nodiscard]] std::size_t nan_count() const noexcept { return nan_; }

  /// Total observations including under/overflow and NaN.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
};

}  // namespace remgen::util
