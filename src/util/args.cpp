#include "util/args.hpp"

#include <cmath>
#include <cstdlib>

namespace remgen::util {

std::optional<Args> Args::parse(int argc, const char* const* argv,
                                const std::set<std::string>& value_keys,
                                const std::set<std::string>& flag_keys, std::string* error) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      if (error != nullptr) *error = "unexpected positional argument: " + token;
      return std::nullopt;
    }
    const std::string name = token.substr(2);
    if (flag_keys.count(name)) {
      args.flags_.insert(name);
      continue;
    }
    if (value_keys.count(name)) {
      if (i + 1 >= argc) {
        if (error != nullptr) *error = "option --" + name + " needs a value";
        return std::nullopt;
      }
      args.values_[name] = argv[++i];
      continue;
    }
    if (error != nullptr) *error = "unknown option --" + name;
    return std::nullopt;
  }
  return args;
}

std::string Args::value(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Args::value_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

long Args::value_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : v;
}

std::vector<std::string> split_list(const std::string& text, char separator) {
  std::vector<std::string> out;
  std::string piece;
  for (const char c : text) {
    if (c == separator) {
      if (!piece.empty()) out.push_back(std::move(piece));
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  if (!piece.empty()) out.push_back(std::move(piece));
  return out;
}

std::optional<std::array<double, 3>> parse_triple(const std::string& text) {
  // split_list drops empty pieces, so "1,,2" and trailing commas come out
  // with the wrong count and are rejected here.
  const std::vector<std::string> pieces = split_list(text);
  if (pieces.size() != 3) return std::nullopt;
  std::array<double, 3> out{};
  for (std::size_t i = 0; i < 3; ++i) {
    char* end = nullptr;
    const double v = std::strtod(pieces[i].c_str(), &end);
    // The whole piece must be consumed ("1.5x" is malformed, not 1.5), and
    // strtod accepts "nan"/"inf" spellings that are never valid coordinates.
    if (end == pieces[i].c_str() || *end != '\0' || !std::isfinite(v)) return std::nullopt;
    out[i] = v;
  }
  return out;
}

}  // namespace remgen::util
