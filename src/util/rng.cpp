#include "util/rng.hpp"

namespace remgen::util {

namespace {

/// FNV-1a over a string, used to derive decorrelated child seeds.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates nearby seeds.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::string_view tag) {
  const std::uint64_t child_seed = splitmix(engine_() ^ fnv1a(tag));
  return Rng(child_seed);
}

double Rng::uniform(double lo, double hi) {
  REMGEN_EXPECTS(lo < hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  REMGEN_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double sigma) {
  REMGEN_EXPECTS(sigma >= 0.0);
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

std::uint32_t Rng::poisson(double mean) {
  REMGEN_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  return static_cast<std::uint32_t>(std::poisson_distribution<std::uint32_t>(mean)(engine_));
}

double Rng::exponential(double rate) {
  REMGEN_EXPECTS(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  REMGEN_EXPECTS(n > 0);
  return static_cast<std::size_t>(
      std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
}

}  // namespace remgen::util
