// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in remgen draws from an explicitly passed Rng (or
// a child forked from one) rather than from global state, so a campaign run
// with a fixed seed is bit-for-bit reproducible regardless of module ordering.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "util/contracts.hpp"

namespace remgen::util {

/// Seedable random source wrapping std::mt19937_64 with the distributions the
/// simulator needs. Copyable (copies continue the same stream independently).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed), seed_(seed) {}

  /// Seed this generator was created with (children have derived seeds).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Forks a child generator whose stream is decorrelated from the parent's.
  /// Forking is deterministic: the same parent state + tag yields the same
  /// child. Use distinct tags for distinct subsystems.
  [[nodiscard]] Rng fork(std::string_view tag);

  /// Uniform double in [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() { return uniform(0.0, 1.0); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian sample with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double gaussian(double mean, double sigma);

  /// Bernoulli trial with success probability p clamped into [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Poisson sample with the given non-negative mean.
  [[nodiscard]] std::uint32_t poisson(double mean);

  /// Exponential sample with the given positive rate (lambda).
  [[nodiscard]] double exponential(double rate);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() { return engine_(); }

  /// Picks a uniformly random index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Fisher-Yates shuffles a container in place.
  template <typename Container>
  void shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      std::swap(c[i - 1], c[index(i)]);
    }
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace remgen::util
