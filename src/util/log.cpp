#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

namespace remgen::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// UTC wall-clock "HH:MM:SS.mmm" for the line prefix.
std::string timestamp() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d:%02d:%02d.%03d", utc.tm_hour, utc.tm_min, utc.tm_sec,
                static_cast<int>(millis));
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> log_level_from_string(std::string_view name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

void init_log_level_from_args(int argc, const char* const* argv) {
  std::string_view requested;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--log-level" && i + 1 < argc) {
      requested = argv[i + 1];
    } else if (arg.rfind("--log-level=", 0) == 0) {
      requested = arg.substr(std::string_view("--log-level=").size());
    }
  }
  if (requested.empty()) {
    if (const char* env = std::getenv("REMGEN_LOG_LEVEL")) requested = env;
  }
  if (requested.empty()) return;
  if (const auto level = log_level_from_string(requested)) {
    set_log_level(*level);
  } else {
    std::fprintf(stderr, "unknown log level '%.*s' (want trace|debug|info|warn|error|off)\n",
                 static_cast<int>(requested.size()), requested.data());
  }
}

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  // Build the whole line first and emit it with one fwrite: stdio locks the
  // stream per call, so concurrent writers cannot interleave partial lines.
  std::string line;
  line.reserve(24 + component.size() + message.size());
  line += timestamp();
  line += " [";
  line += level_name(level);
  line += "] ";
  line.append(component.data(), component.size());
  line += ": ";
  line.append(message.data(), message.size());
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace remgen::util
