#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace remgen::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace remgen::util
