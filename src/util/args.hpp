// Minimal command-line argument parser for the remgen CLI tool.
//
// Grammar: `program <command> [--key value]... [--flag]...`. Options are
// declared up front so unknown keys are reported instead of silently
// swallowed.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace remgen::util {

/// Parsed command line.
class Args {
 public:
  /// Parses argv after declaring which `--key value` options and `--flag`
  /// switches exist. Returns std::nullopt and fills `error` on unknown or
  /// malformed input. argv[1], when present and not starting with "--", is
  /// the command.
  [[nodiscard]] static std::optional<Args> parse(int argc, const char* const* argv,
                                                 const std::set<std::string>& value_keys,
                                                 const std::set<std::string>& flag_keys,
                                                 std::string* error);

  /// The subcommand (argv[1]); empty when none was given.
  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  /// True iff --name was present as a flag.
  [[nodiscard]] bool flag(const std::string& name) const { return flags_.count(name) > 0; }

  /// Value of --name, or `fallback` when absent.
  [[nodiscard]] std::string value(const std::string& name, const std::string& fallback = "") const;

  /// Value of --name parsed as double/int, or `fallback` when absent or
  /// unparseable.
  [[nodiscard]] double value_double(const std::string& name, double fallback) const;
  [[nodiscard]] long value_int(const std::string& name, long fallback) const;

  /// True iff --name was given.
  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

/// Splits "a,b,c" into {"a","b","c"} (empty pieces dropped).
[[nodiscard]] std::vector<std::string> split_list(const std::string& text, char separator = ',');

/// Parses an "x,y,z" coordinate triple into three finite doubles. Rejects
/// missing/extra components, non-numeric or partially-numeric pieces, and
/// NaN/infinite values (nullopt) — a malformed --at must error out instead
/// of silently producing a garbage query.
[[nodiscard]] std::optional<std::array<double, 3>> parse_triple(const std::string& text);

}  // namespace remgen::util
