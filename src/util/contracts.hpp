// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Contract violations indicate programmer error and terminate via
// remgen::util::contract_violation(), which prints a diagnostic and aborts.
// They are enabled in all build types: the library is a simulator whose value
// is correctness, and the checks are cheap relative to the numeric work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace remgen::util {

/// Prints a contract-violation diagnostic and aborts. Never returns.
[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "remgen: %s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace remgen::util

/// Precondition check: callers must satisfy `cond` before entry.
#define REMGEN_EXPECTS(cond)                                                       \
  do {                                                                             \
    if (!(cond))                                                                   \
      ::remgen::util::contract_violation("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check: the implementation must establish `cond`.
#define REMGEN_ENSURES(cond)                                                        \
  do {                                                                              \
    if (!(cond))                                                                    \
      ::remgen::util::contract_violation("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
