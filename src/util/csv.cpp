#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace remgen::util {

int CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvTable parse_csv(std::string_view text) {
  std::vector<CsvRow> all_rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    all_rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) throw std::runtime_error("csv: quote inside unquoted field");
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (field_started || !row.empty() || !field.empty()) end_row();

  CsvTable table;
  if (!all_rows.empty()) {
    table.header = std::move(all_rows.front());
    table.rows.assign(std::make_move_iterator(all_rows.begin() + 1),
                      std::make_move_iterator(all_rows.end()));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace remgen::util
