// Whitespace-safe field quoting for line-oriented telemetry payloads.
//
// The CRTP "tlm" payloads are whitespace-delimited; free-text fields such as
// SSIDs (which may contain spaces, or be empty for hidden networks) must be
// quoted on the wire or they corrupt every field behind them. quote_field and
// read_quoted_field are the two symmetric halves of that framing.
#pragma once

#include <istream>
#include <string>
#include <string_view>

namespace remgen::util {

/// Wraps `value` in double quotes, escaping '"' and '\' with a backslash.
/// An empty value becomes `""` so the surrounding tuple stays aligned.
[[nodiscard]] std::string quote_field(std::string_view value);

/// Reads one quote_field-encoded field from `in` (skipping leading
/// whitespace) into `out`. Returns false, leaving the stream failed, when the
/// field is missing or unterminated.
[[nodiscard]] bool read_quoted_field(std::istream& in, std::string& out);

}  // namespace remgen::util
