#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "store/snapshot.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(util::format("net: fcntl O_NONBLOCK failed: {}",
                                          std::strerror(errno)));
  }
}

/// Bucket bounds (microseconds) shared by the lifecycle histograms and the
/// rolling latency window; the windowed tail gauges interpolate inside them.
const std::vector<double>& latency_bounds_us() {
  static const std::vector<double> bounds{50,    100,   250,    500,    1000,  2500,
                                          5000,  10000, 25000,  50000,  100000,
                                          250000, 1000000};
  return bounds;
}

const char* request_type_label(serve::RequestType type) {
  switch (type) {
    case serve::RequestType::Point: return "point";
    case serve::RequestType::Batch: return "batch";
    case serve::RequestType::Volume: return "volume";
  }
  return "unknown";
}

}  // namespace

/// One accepted socket. The connection object outlives a half-closed peer
/// while queued work still references it, so pipelined clients that
/// shutdown(SHUT_WR) and then read still receive every response. HTTP
/// metrics connections share the struct: they parse a request head instead
/// of JSONL lines and close once their single response flushes.
struct Server::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  bool http = false;          ///< Accepted on the HTTP metrics listener.
  std::string in;             ///< Bytes read, not yet split into lines.
  std::string out;            ///< Response bytes not yet written.
  bool peer_closed = false;   ///< recv saw EOF: no more requests.
  bool broken = false;        ///< Socket error: drop outstanding output.
  std::size_t queued = 0;     ///< queue_/reload entries still owed to this peer.

  /// Write-completion tracking: bytes ever enqueued/flushed, plus the
  /// lifecycle records waiting for their response bytes to reach the socket.
  std::size_t enqueued_total = 0;
  std::size_t written_total = 0;
  struct WriteRecord {
    std::size_t end_offset = 0;  ///< enqueued_total after this response.
    Lifecycle life;
  };
  std::deque<WriteRecord> write_records;
};

/// One admitted queue entry: either a request waiting for an execution round
/// or an already-built response (parse error, overload, admin result) that
/// only flows through the queue to keep per-connection delivery in order.
struct Server::Pending {
  std::uint64_t conn_id = 0;
  std::optional<serve::Request> request;
  std::shared_ptr<const serve::QueryEngine> engine;  ///< Resolved at admission.
  serve::Response ready;
  Lifecycle life;  ///< Meaningful only while `request` is set.
};

/// A hot snapshot reload in flight on its background thread. The worker only
/// touches its own job fields; the event loop polls `done` and performs the
/// engine swap itself, so the engines_ map stays single-threaded.
struct Server::ReloadJob {
  std::uint64_t conn_id = 0;
  std::int64_t id = -1;
  std::string map;
  std::string path;
  std::string error;
  std::shared_ptr<const serve::QueryEngine> engine;
  std::atomic<bool> done{false};
  std::thread worker;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      start_time_(std::chrono::steady_clock::now()),
      win_latency_us_(latency_bounds_us(), config_.window_count, config_.window_span_s),
      win_loop_lag_us_(latency_bounds_us(), config_.window_count, config_.window_span_s),
      win_responses_(config_.window_count, config_.window_span_s),
      win_cache_hits_(config_.window_count, config_.window_span_s),
      win_cache_misses_(config_.window_count, config_.window_span_s) {}

Server::~Server() {
  finish_reloads(/*wait=*/true);
  for (auto& [id, connection] : connections_) {
    if (connection.fd >= 0) ::close(connection.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_listen_fd_ >= 0) ::close(http_listen_fd_);
}

double Server::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start_time_)
      .count();
}

void Server::add_engine(std::string name, std::shared_ptr<const serve::QueryEngine> engine) {
  if (engine == nullptr) throw std::runtime_error("net: add_engine: null engine");
  if (default_map_.empty()) default_map_ = name;
  map_stats_.try_emplace(name);
  map_epochs_.try_emplace(name, 0);
  engines_[std::move(name)] = std::move(engine);
}

void Server::publish(std::string name, std::shared_ptr<const serve::QueryEngine> engine,
                     std::uint64_t epoch) {
  if (engine == nullptr) throw std::runtime_error("net: publish: null engine");
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  publishes_.push_back(PublishJob{std::move(name), std::move(engine), epoch});
}

void Server::finish_publishes() {
  std::vector<PublishJob> jobs;
  {
    const std::lock_guard<std::mutex> lock(publish_mutex_);
    jobs.swap(publishes_);
  }
  for (PublishJob& job : jobs) {
    // Same swap discipline as finish_reloads: only this (event-loop) thread
    // touches engines_, and admitted requests pinned their engine already.
    if (default_map_.empty()) default_map_ = job.map;
    map_stats_.try_emplace(job.map);
    map_epochs_[job.map] = job.epoch;
    engines_[std::move(job.map)] = std::move(job.engine);
    ++stats_.publish_swaps;
    REMGEN_COUNTER_ADD("net.publish_swaps", 1);
  }
}

int Server::listen_on(const std::string& address, std::uint16_t port, int backlog,
                      std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(util::format("net: socket: {}", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error(util::format("net: bad bind address '{}'", address));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(
        util::format("net: bind {}:{}: {}", address, port, std::strerror(saved)));
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(util::format("net: listen: {}", std::strerror(saved)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(util::format("net: getsockname: {}", std::strerror(saved)));
  }
  set_nonblocking(fd);
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

std::uint16_t Server::bind_and_listen() {
  // An engine published before serving (the remgen-ingestd startup path)
  // counts as registration: drain the handover queue before the check.
  finish_publishes();
  if (engines_.empty()) throw std::runtime_error("net: no engine registered");
  listen_fd_ = listen_on(config_.bind_address, config_.port, config_.backlog, &port_);
  if (config_.http_metrics_port >= 0) {
    http_listen_fd_ = listen_on(config_.bind_address,
                                static_cast<std::uint16_t>(config_.http_metrics_port),
                                config_.backlog, &http_port_);
  }
  return port_;
}

serve::Response Server::make_error(std::int64_t id, const std::string& message) const {
  serve::Response response;
  response.id = id;
  response.ok = false;
  response.error = message;
  return response;
}

void Server::accept_ready(int listen_fd, bool http) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: drained.
    }
    if (connections_.size() >= config_.max_connections) {
      ++stats_.connections_rejected;
      REMGEN_COUNTER_ADD("net.connections_rejected", 1);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Connection connection;
    connection.id = next_conn_id_++;
    connection.fd = fd;
    connection.http = http;
    connections_.emplace(connection.id, std::move(connection));
    ++stats_.connections_accepted;
    REMGEN_COUNTER_ADD("net.connections_accepted", 1);
  }
}

void Server::refresh_live_metrics(double now_s) {
  obs::Registry& reg = obs::registry();
  reg.gauge("net.uptime_seconds").set(now_s);
  reg.gauge("net.window.span_seconds").set(win_latency_us_.span_seconds());
  reg.gauge("net.window.requests").set(static_cast<double>(win_responses_.windowed(now_s)));
  reg.gauge("net.window.qps").set(win_responses_.rate_per_second(now_s));

  const obs::HistogramSnapshot latency = win_latency_us_.merged(now_s);
  reg.gauge("net.window.latency_p50_us").set(obs::histogram_quantile(latency, 0.50));
  reg.gauge("net.window.latency_p90_us").set(obs::histogram_quantile(latency, 0.90));
  reg.gauge("net.window.latency_p99_us").set(obs::histogram_quantile(latency, 0.99));
  reg.gauge("net.window.latency_p999_us").set(obs::histogram_quantile(latency, 0.999));

  const std::uint64_t hits = win_cache_hits_.windowed(now_s);
  const std::uint64_t misses = win_cache_misses_.windowed(now_s);
  reg.gauge("net.window.cache_hit_rate")
      .set(hits + misses > 0
               ? static_cast<double>(hits) / static_cast<double>(hits + misses)
               : 0.0);

  const obs::HistogramSnapshot lag = win_loop_lag_us_.merged(now_s);
  reg.gauge("net.loop.lag_p99_us").set(obs::histogram_quantile(lag, 0.99));
  reg.gauge("net.loop.stalled").set(stalled_ ? 1.0 : 0.0);
  reg.gauge("net.loop.stalled_rounds").set(static_cast<double>(stats_.stalled_rounds));

  reg.gauge("net.connections_open").set(static_cast<double>(connections_.size()));
  reg.gauge("net.inflight").set(static_cast<double>(queued_requests_));
  reg.gauge("net.buffered_bytes").set(static_cast<double>(buffered_bytes_));
  reg.gauge("net.limit.max_inflight").set(static_cast<double>(config_.max_inflight));
  reg.gauge("net.limit.max_batch").set(static_cast<double>(config_.max_batch));
  reg.gauge("net.limit.max_connections").set(static_cast<double>(config_.max_connections));
  reg.gauge("net.limit.cache_mb").set(static_cast<double>(config_.cache_bytes >> 20));

  // Per-map series. Values are lifetime-monotonic; they are mirrored as
  // gauges at scrape time so the per-request path never touches the
  // registry mutex for dynamic names.
  for (const auto& [name, stats] : map_stats_) {
    const std::string prefix = "net.map." + name + ".";
    reg.gauge(prefix + "requests").set(static_cast<double>(stats.requests));
    reg.gauge(prefix + "responses").set(static_cast<double>(stats.responses));
    reg.gauge(prefix + "errors").set(static_cast<double>(stats.errors));
    reg.gauge(prefix + "cache_hits").set(static_cast<double>(stats.cache_hits));
    reg.gauge(prefix + "cache_misses").set(static_cast<double>(stats.cache_misses));
    const auto epoch_it = map_epochs_.find(name);
    reg.gauge(prefix + "epoch")
        .set(epoch_it != map_epochs_.end() ? static_cast<double>(epoch_it->second) : 0.0);
  }
}

std::string Server::prometheus_text() {
  refresh_live_metrics(now_us() / 1e6);
  std::ostringstream out;
  obs::write_prometheus(out, obs::registry().snapshot());
  return std::move(out).str();
}

void Server::observe_life_histogram(const char* base, const Lifecycle& life, double value_us) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  reg.histogram(base, latency_bounds_us()).observe(value_us);
  reg.histogram(std::string(base) + ".type." + life.type, latency_bounds_us())
      .observe(value_us);
  reg.histogram(std::string(base) + ".map." + life.map, latency_bounds_us())
      .observe(value_us);
}

void Server::maybe_slow_log(const Lifecycle& life, double total_us, double write_stall_us,
                            double now_s) {
  if (!slow_log_.is_open() || total_us < config_.slow_ms * 1000.0) return;
  ++slow_seen_;
  if (config_.slow_log_sample > 1 && (slow_seen_ - 1) % config_.slow_log_sample != 0) return;
  obs::Json::Object entry;
  entry["ts_s"] = obs::Json(now_s);
  entry["id"] = obs::Json(life.id);
  entry["type"] = obs::Json(std::string(life.type));
  entry["map"] = obs::Json(life.map);
  entry["points"] = obs::Json(static_cast<std::int64_t>(life.points));
  entry["queue_wait_us"] = obs::Json(life.dequeue_us - life.admit_us);
  entry["exec_us"] = obs::Json(life.exec_end_us - life.exec_start_us);
  entry["write_stall_us"] = obs::Json(write_stall_us);
  entry["total_us"] = obs::Json(total_us);
  entry["round_size"] = obs::Json(static_cast<std::int64_t>(life.round_size));
  entry["round_cache_hits"] = obs::Json(life.round_cache_hits);
  slow_log_ << obs::Json(std::move(entry)).dump() << '\n';
  slow_log_.flush();  // Slow requests are rare; make each visible immediately.
  ++stats_.slow_logged;
  REMGEN_COUNTER_ADD("net.slow_logged", 1);
}

void Server::handle_admin(Connection& connection, std::int64_t id, const std::string& type,
                          const obs::Json& doc) {
  if (type == "stats") {
    const double now_s = now_us() / 1e6;
    serve::Response response;
    response.id = id;
    obs::Json::Object body;
    body["uptime_seconds"] = obs::Json(now_s);
    body["connections"] = obs::Json(static_cast<std::int64_t>(connections_.size()));
    body["inflight"] = obs::Json(static_cast<std::int64_t>(queued_requests_));
    body["buffered_bytes"] = obs::Json(static_cast<std::int64_t>(buffered_bytes_));
    body["requests"] = obs::Json(stats_.requests);
    body["responses"] = obs::Json(stats_.responses);
    body["parse_errors"] = obs::Json(stats_.parse_errors);
    body["overload_rejections"] = obs::Json(stats_.overload_rejections);
    body["reload_swaps"] = obs::Json(stats_.reload_swaps);
    body["reload_failures"] = obs::Json(stats_.reload_failures);
    body["publish_swaps"] = obs::Json(stats_.publish_swaps);
    body["cache_hits"] = obs::Json(stats_.cache_hits);
    body["cache_misses"] = obs::Json(stats_.cache_misses);
    body["metrics_scrapes"] = obs::Json(stats_.metrics_scrapes);
    body["slow_logged"] = obs::Json(stats_.slow_logged);

    obs::Json::Object limits;
    limits["max_inflight"] = obs::Json(static_cast<std::int64_t>(config_.max_inflight));
    limits["max_batch"] = obs::Json(static_cast<std::int64_t>(config_.max_batch));
    limits["max_connections"] = obs::Json(static_cast<std::int64_t>(config_.max_connections));
    limits["cache_mb"] = obs::Json(static_cast<std::int64_t>(config_.cache_bytes >> 20));
    limits["max_buffered_bytes"] =
        obs::Json(static_cast<std::int64_t>(config_.max_buffered_bytes));
    body["limits"] = obs::Json(std::move(limits));

    const obs::HistogramSnapshot latency = win_latency_us_.merged(now_s);
    obs::Json::Object latency_obj;
    latency_obj["p50"] = obs::Json(obs::histogram_quantile(latency, 0.50));
    latency_obj["p90"] = obs::Json(obs::histogram_quantile(latency, 0.90));
    latency_obj["p99"] = obs::Json(obs::histogram_quantile(latency, 0.99));
    latency_obj["p99.9"] = obs::Json(obs::histogram_quantile(latency, 0.999));
    obs::Json::Object window;
    window["span_seconds"] = obs::Json(win_latency_us_.span_seconds());
    window["requests"] = obs::Json(win_responses_.windowed(now_s));
    window["qps"] = obs::Json(win_responses_.rate_per_second(now_s));
    const std::uint64_t win_hits = win_cache_hits_.windowed(now_s);
    const std::uint64_t win_misses = win_cache_misses_.windowed(now_s);
    window["cache_hit_rate"] =
        obs::Json(win_hits + win_misses > 0
                      ? static_cast<double>(win_hits) /
                            static_cast<double>(win_hits + win_misses)
                      : 0.0);
    window["latency_us"] = obs::Json(std::move(latency_obj));
    body["window"] = obs::Json(std::move(window));

    obs::Json::Object loop;
    loop["lag_p99_us"] =
        obs::Json(obs::histogram_quantile(win_loop_lag_us_.merged(now_s), 0.99));
    loop["stalled"] = obs::Json(stalled_);
    loop["stalled_rounds"] = obs::Json(stats_.stalled_rounds);
    body["loop"] = obs::Json(std::move(loop));

    obs::Json::Array maps;
    for (const auto& [name, engine] : engines_) maps.push_back(obs::Json(name));
    body["maps"] = obs::Json(std::move(maps));
    obs::Json::Object per_map;
    for (const auto& [name, ms] : map_stats_) {
      obs::Json::Object entry;
      entry["requests"] = obs::Json(ms.requests);
      entry["responses"] = obs::Json(ms.responses);
      entry["errors"] = obs::Json(ms.errors);
      entry["cache_hits"] = obs::Json(ms.cache_hits);
      entry["cache_misses"] = obs::Json(ms.cache_misses);
      const auto epoch_it = map_epochs_.find(name);
      entry["epoch"] =
          obs::Json(epoch_it != map_epochs_.end() ? epoch_it->second : std::uint64_t{0});
      per_map[name] = obs::Json(std::move(entry));
    }
    body["map_stats"] = obs::Json(std::move(per_map));

    response.body = obs::Json(std::move(body));
    enqueue_response(connection, std::move(response));
    return;
  }
  if (type == "metrics") {
    // In-flight scrape: a registry snapshot plus gauge refresh — no engine
    // work, so it cannot block execution rounds. The exposition rides as a
    // JSON string so the reply stays one line on the shared framing.
    serve::Response response;
    response.id = id;
    obs::Json::Object body;
    body["content_type"] = obs::Json(std::string("text/plain; version=0.0.4"));
    body["prometheus"] = obs::Json(prometheus_text());
    response.body = obs::Json(std::move(body));
    ++stats_.metrics_scrapes;
    REMGEN_COUNTER_ADD("net.metrics_scrapes", 1);
    enqueue_response(connection, std::move(response));
    return;
  }
  // type == "reload": {"id":N,"type":"reload","snapshot":"path"[,"map":"m"]}.
  // The response is deferred until the background load finished and the swap
  // happened — it is the client's "new snapshot is live" acknowledgement —
  // and is therefore delivered out of queue order (use a dedicated admin
  // connection when strict pipelining matters).
  if (!doc.contains("snapshot") || !doc.at("snapshot").is_string()) {
    enqueue_response(connection, make_error(id, "reload: missing 'snapshot' path"));
    return;
  }
  const std::string map =
      doc.contains("map") ? doc.at("map").as_string() : default_map_;
  if (engines_.find(map) == engines_.end()) {
    enqueue_response(connection, make_error(id, util::format("reload: unknown map '{}'", map)));
    return;
  }
  for (const auto& job : reloads_) {
    if (job->map == map) {
      enqueue_response(connection,
                       make_error(id, util::format("reload already in progress for map '{}'", map)));
      return;
    }
  }
  auto job = std::make_unique<ReloadJob>();
  job->conn_id = connection.id;
  job->id = id;
  job->map = map;
  job->path = doc.at("snapshot").as_string();
  ++connection.queued;
  ReloadJob* raw = job.get();
  const std::size_t cache_bytes = config_.cache_bytes;
  job->worker = std::thread([raw, cache_bytes] {
    try {
      store::Snapshot snapshot = store::load_snapshot_file(raw->path);
      raw->engine =
          std::make_shared<const serve::QueryEngine>(std::move(snapshot), cache_bytes);
    } catch (const std::exception& e) {
      raw->error = e.what();
    }
    raw->done.store(true, std::memory_order_release);
  });
  reloads_.push_back(std::move(job));
}

void Server::enqueue_response(Connection& connection, serve::Response response) {
  Pending pending;
  pending.conn_id = connection.id;
  pending.ready = std::move(response);
  ++connection.queued;
  queue_.push_back(std::move(pending));
}

void Server::handle_line(Connection& connection, const std::string& line) {
  if (line.empty()) return;
  obs::Json doc;
  serve::Request request;
  try {
    doc = obs::Json::parse(line);
    if (doc.is_object() && doc.contains("type") && doc.at("type").is_string()) {
      const std::string& type = doc.at("type").as_string();
      if (type == "stats" || type == "reload" || type == "metrics") {
        // Admin types share the id contract with query requests.
        std::int64_t id = -1;
        if (doc.contains("id") && doc.at("id").is_int()) id = doc.at("id").as_int64();
        if (id < 0) {
          ++stats_.parse_errors;
          REMGEN_COUNTER_ADD("net.parse_errors", 1);
          enqueue_response(connection,
                           make_error(-1, "request: 'id' must be a non-negative integer"));
          return;
        }
        handle_admin(connection, id, type, doc);
        return;
      }
    }
    request = serve::parse_request_doc(doc);
  } catch (const std::exception& e) {
    ++stats_.parse_errors;
    REMGEN_COUNTER_ADD("net.parse_errors", 1);
    enqueue_response(connection, make_error(serve::salvage_request_id(line), e.what()));
    return;
  }

  // Admission control: a full queue answers 503-style instead of queueing
  // unboundedly. The response still flows through the queue (it is cheap and
  // preserves per-connection order); only executable work is bounded.
  if (queued_requests_ >= config_.max_inflight) {
    ++stats_.overload_rejections;
    REMGEN_COUNTER_ADD("net.overload_rejections", 1);
    enqueue_response(connection,
                     make_error(request.id, util::format("overloaded: {} requests in flight (503)",
                                                         queued_requests_)));
    return;
  }

  const std::string& map = request.map.has_value() ? *request.map : default_map_;
  const auto engine_it = engines_.find(map);
  if (engine_it == engines_.end()) {
    enqueue_response(connection, make_error(request.id, util::format("unknown map '{}'", map)));
    return;
  }

  Pending pending;
  pending.conn_id = connection.id;
  pending.life.id = request.id;
  pending.life.type = request_type_label(request.type);
  pending.life.map = map;
  pending.life.points = request.points.empty() ? 1 : request.points.size();
  pending.life.admit_us = now_us();
  pending.request = std::move(request);
  pending.engine = engine_it->second;  // Pinned: reloads never touch in-flight work.
  ++connection.queued;
  ++queued_requests_;
  ++stats_.requests;
  ++map_stats_[map].requests;
  REMGEN_COUNTER_ADD("net.requests", 1);
  queue_.push_back(std::move(pending));
}

void Server::read_ready(Connection& connection) {
  char buffer[16384];
  while (true) {
    const ssize_t n = ::recv(connection.fd, buffer, sizeof buffer, 0);
    if (n > 0) {
      connection.in.append(buffer, static_cast<std::size_t>(n));
      if (connection.in.size() > config_.max_line_bytes &&
          connection.in.find('\n') == std::string::npos) {
        util::logf(util::LogLevel::Warn, "net",
                 "closing connection: request line exceeds {} bytes", config_.max_line_bytes);
        connection.broken = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      connection.peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    connection.broken = true;
    return;
  }
  if (connection.http) {
    http_read_ready(connection);
    return;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = connection.in.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = connection.in.substr(start, newline - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    handle_line(connection, line);
    start = newline + 1;
  }
  connection.in.erase(0, start);
}

void Server::http_read_ready(Connection& connection) {
  // Minimal HTTP/1.0: wait for the end of the request head, answer one GET
  // with text exposition, close after the flush. Anything else is a 404.
  if (connection.in.size() > 16384) {
    connection.broken = true;
    return;
  }
  std::size_t head_end = connection.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    head_end = connection.in.find("\n\n");
    if (head_end == std::string::npos) {
      if (connection.peer_closed && !connection.in.empty()) {
        head_end = connection.in.size();  // Head without blank line, then EOF.
      } else {
        return;  // Head incomplete; keep reading.
      }
    }
  }
  const std::string head = connection.in.substr(0, head_end);
  connection.in.clear();
  connection.peer_closed = true;  // One request per connection; stop reading.

  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const bool is_get = request_line.rfind("GET ", 0) == 0;
  const std::size_t path_start = 4;
  const std::size_t path_end = request_line.find(' ', path_start);
  const std::string path =
      is_get ? request_line.substr(path_start, path_end == std::string::npos
                                                   ? std::string::npos
                                                   : path_end - path_start)
             : std::string();
  std::string body;
  const char* status = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (is_get && (path == "/metrics" || path == "/")) {
    body = prometheus_text();
    ++stats_.metrics_scrapes;
    REMGEN_COUNTER_ADD("net.metrics_scrapes", 1);
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; scrape GET /metrics\n";
  }
  append_output(connection,
                util::format("HTTP/1.0 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n"
                             "Connection: close\r\n\r\n",
                             status, content_type, body.size()) +
                    body);
}

void Server::finish_reloads(bool wait) {
  for (auto it = reloads_.begin(); it != reloads_.end();) {
    ReloadJob& job = **it;
    if (wait && job.worker.joinable()) {
      job.worker.join();
    } else if (!job.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (job.worker.joinable()) job.worker.join();
    serve::Response response;
    response.id = job.id;
    if (job.error.empty()) {
      engines_[job.map] = job.engine;  // The atomic-swap moment: next
                                       // admissions pin the new snapshot.
      ++stats_.reload_swaps;
      REMGEN_COUNTER_ADD("net.reload_swaps", 1);
      obs::Json::Object body;
      body["map"] = obs::Json(job.map);
      body["reloaded"] = obs::Json(true);
      response.body = obs::Json(std::move(body));
    } else {
      ++stats_.reload_failures;
      REMGEN_COUNTER_ADD("net.reload_failures", 1);
      response.ok = false;
      response.error = util::format("reload failed: {}", job.error);
    }
    const auto conn_it = connections_.find(job.conn_id);
    if (conn_it != connections_.end()) {
      append_output(conn_it->second, response.to_jsonl() + '\n');
      --conn_it->second.queued;
      ++stats_.responses;
      REMGEN_COUNTER_ADD("net.responses", 1);
    }
    it = reloads_.erase(it);
  }
}

void Server::execute_round() {
  if (queue_.empty()) return;
  const std::size_t round_size = std::min(queue_.size(), config_.max_batch);
  std::vector<Pending> round;
  round.reserve(round_size);
  const double dequeue_us = now_us();
  for (std::size_t i = 0; i < round_size; ++i) {
    round.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  // Fan out: group executable entries by their pinned engine (one group in
  // steady state; two only mid-reload or with multiple maps) and run each
  // group through the coalescing batch path on the shared pool.
  std::map<const serve::QueryEngine*, std::vector<std::size_t>> by_engine;
  std::size_t executable = 0;
  for (std::size_t i = 0; i < round.size(); ++i) {
    if (round[i].request.has_value()) {
      by_engine[round[i].engine.get()].push_back(i);
      round[i].life.dequeue_us = dequeue_us;
      ++executable;
    }
  }
  for (const auto& [engine, indices] : by_engine) {
    std::vector<serve::Request> requests;
    requests.reserve(indices.size());
    for (const std::size_t i : indices) requests.push_back(std::move(*round[i].request));
    // Engine-cache deltas of this group: execute_coalesced is fork/join on
    // the pool, so after it returns the counters are quiescent and the
    // delta is exactly this round's activity on this engine.
    const std::uint64_t hits_before = engine->cache().hits();
    const std::uint64_t misses_before = engine->cache().misses();
    const double exec_start_us = now_us();
    std::vector<serve::Response> responses = engine->execute_coalesced(requests);
    const double exec_end_us = now_us();
    const std::uint64_t hit_delta = engine->cache().hits() - hits_before;
    const std::uint64_t miss_delta = engine->cache().misses() - misses_before;
    const double now_s = exec_end_us / 1e6;
    stats_.cache_hits += hit_delta;
    stats_.cache_misses += miss_delta;
    win_cache_hits_.add(hit_delta, now_s);
    win_cache_misses_.add(miss_delta, now_s);
    if (!indices.empty()) {
      MapStats& ms = map_stats_[round[indices.front()].life.map];
      ms.cache_hits += hit_delta;
      ms.cache_misses += miss_delta;
    }
    for (std::size_t j = 0; j < indices.size(); ++j) {
      Pending& pending = round[indices[j]];
      pending.ready = std::move(responses[j]);
      pending.request.reset();
      pending.life.exec_start_us = exec_start_us;
      pending.life.exec_end_us = exec_end_us;
      pending.life.round_cache_hits = hit_delta;
      pending.life.round_size = executable;
      observe_life_histogram("net.queue_wait_us", pending.life,
                             pending.life.dequeue_us - pending.life.admit_us);
      observe_life_histogram("net.exec_us", pending.life, exec_end_us - exec_start_us);
    }
    queued_requests_ -= indices.size();
  }

  // Deliver in admission order; per-connection response order is therefore
  // exactly the request order, pipelining included.
  const double deliver_us = now_us();
  const double deliver_s = deliver_us / 1e6;
  for (Pending& pending : round) {
    const auto it = connections_.find(pending.conn_id);
    const bool executed = pending.life.admit_us > 0.0;
    if (executed) {
      win_responses_.add(1, deliver_s);
      MapStats& ms = map_stats_[pending.life.map];
      ++ms.responses;
      if (!pending.ready.ok) ++ms.errors;
    }
    if (it == connections_.end()) continue;  // Peer vanished; response unroutable.
    Connection& connection = it->second;
    --connection.queued;
    if (connection.broken) continue;
    append_output(connection, pending.ready.to_jsonl() + '\n');
    if (executed) {
      pending.life.enqueue_us = deliver_us;
      connection.write_records.push_back(
          Connection::WriteRecord{connection.enqueued_total, std::move(pending.life)});
    }
    ++stats_.responses;
    REMGEN_COUNTER_ADD("net.responses", 1);
  }
}

void Server::append_output(Connection& connection, const std::string& bytes) {
  connection.out += bytes;
  connection.enqueued_total += bytes.size();
}

void Server::write_ready(Connection& connection) {
  while (!connection.out.empty()) {
    const ssize_t n = ::send(connection.fd, connection.out.data(),
                             connection.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection.out.erase(0, static_cast<std::size_t>(n));
      connection.written_total += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    connection.broken = true;
    break;
  }
  complete_writes(connection);
}

void Server::complete_writes(Connection& connection) {
  if (connection.write_records.empty()) return;
  const double done_us = now_us();
  const double done_s = done_us / 1e6;
  while (!connection.write_records.empty() &&
         connection.write_records.front().end_offset <= connection.written_total) {
    const Lifecycle& life = connection.write_records.front().life;
    const double write_stall_us = done_us - life.enqueue_us;
    const double total_us = done_us - life.admit_us;
    observe_life_histogram("net.write_stall_us", life, write_stall_us);
    win_latency_us_.observe(total_us, done_s);
    maybe_slow_log(life, total_us, write_stall_us, done_s);
    connection.write_records.pop_front();
  }
  if (connection.broken) connection.write_records.clear();
}

void Server::close_connection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
  REMGEN_GAUGE_SET("net.connections_open", static_cast<double>(connections_.size()));
}

void Server::run() {
  if (listen_fd_ < 0) bind_and_listen();
  util::logf(util::LogLevel::Info, "net", "serving {} map(s) on {}:{}", engines_.size(),
             config_.bind_address, port_);
  if (http_listen_fd_ >= 0) {
    util::logf(util::LogLevel::Info, "net", "metrics scrape on http://{}:{}/metrics",
               config_.bind_address, http_port_);
  }
  if (!config_.slow_log_path.empty()) {
    slow_log_.open(config_.slow_log_path, std::ios::app);
    if (!slow_log_) {
      util::logf(util::LogLevel::Warn, "net", "cannot open slow log '{}'",
                 config_.slow_log_path);
    }
  }
  bool accepting = true;
  while (true) {
    const bool draining = shutdown_requested_.load(std::memory_order_relaxed);
    if (draining && accepting) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (http_listen_fd_ >= 0) {
        ::close(http_listen_fd_);
        http_listen_fd_ = -1;
      }
      accepting = false;
      // One final read pass: requests the peer fully delivered before the
      // drain began are owed a response, even though POLLIN stays off from
      // here on. Without it a pipelined burst still sitting in the socket
      // buffer would be dropped when the connection closes as "done".
      for (auto& [conn_id, connection] : connections_) {
        if (!connection.http && !connection.broken && !connection.peer_closed) {
          read_ready(connection);
        }
      }
      util::logf(util::LogLevel::Info, "net", "draining {} queued request(s) over {} connection(s)",
                 queue_.size(), connections_.size());
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // fds[i + offset] -> connection id
    std::size_t http_slot = static_cast<std::size_t>(-1);
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      if (http_listen_fd_ >= 0) {
        http_slot = fds.size();
        fds.push_back({http_listen_fd_, POLLIN, 0});
      }
    }
    const std::size_t conn_offset = fds.size();
    for (auto& [conn_id, connection] : connections_) {
      short events = 0;
      // Backpressure: stop reading while this peer's unwritten output is
      // over budget or the server is draining.
      if (!connection.peer_closed && !draining &&
          connection.out.size() < config_.max_buffered_bytes) {
        events |= POLLIN;
      }
      if (!connection.out.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({connection.fd, events, 0});
      fd_conn.push_back(conn_id);
    }

    // Work is already queued (or reloads may finish): poll only as a quick
    // readiness probe; otherwise sleep until traffic or the timeout.
    const int timeout =
        (!queue_.empty() || !reloads_.empty()) ? 0 : config_.poll_timeout_ms;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error(util::format("net: poll: {}", std::strerror(errno)));
    }
    const double busy_start_us = now_us();  // Loop-lag clock starts after the sleep.

    if (ready > 0) {
      if (accepting && (fds[0].revents & POLLIN) != 0) accept_ready(listen_fd_, /*http=*/false);
      if (http_slot != static_cast<std::size_t>(-1) &&
          (fds[http_slot].revents & POLLIN) != 0) {
        accept_ready(http_listen_fd_, /*http=*/true);
      }
      for (std::size_t i = 0; i < fd_conn.size(); ++i) {
        const auto it = connections_.find(fd_conn[i]);
        if (it == connections_.end()) continue;
        const short revents = fds[conn_offset + i].revents;
        if ((revents & (POLLERR | POLLNVAL)) != 0) it->second.broken = true;
        if ((revents & (POLLIN | POLLHUP)) != 0 && !it->second.broken &&
            !it->second.peer_closed) {
          read_ready(it->second);
        }
        if ((revents & POLLOUT) != 0 && !it->second.broken) write_ready(it->second);
      }
    }

    finish_reloads(/*wait=*/false);
    finish_publishes();
    execute_round();

    // Flush opportunistically after executing — most responses fit the
    // socket buffer and go out without waiting for the next POLLOUT round.
    std::vector<std::uint64_t> to_close;
    std::size_t buffered = 0;
    for (auto& [conn_id, connection] : connections_) {
      if (!connection.out.empty() && !connection.broken) write_ready(connection);
      buffered += connection.out.size();
      const bool done_sending = connection.out.empty() && connection.queued == 0;
      if (connection.broken || (connection.peer_closed && done_sending) ||
          (draining && done_sending)) {
        to_close.push_back(conn_id);
      }
    }
    for (const std::uint64_t conn_id : to_close) close_connection(conn_id);
    buffered_bytes_ = buffered;
    REMGEN_GAUGE_SET("net.connections_open", static_cast<double>(connections_.size()));
    REMGEN_GAUGE_SET("net.inflight", static_cast<double>(queued_requests_));
    REMGEN_GAUGE_SET("net.buffered_bytes", static_cast<double>(buffered_bytes_));

    // Event-loop health: the busy (non-poll) part of this iteration is the
    // loop lag — how long queued work waited for the loop to come around.
    const double busy_us = now_us() - busy_start_us;
    win_loop_lag_us_.observe(busy_us, busy_start_us / 1e6);
    if (obs::enabled()) {
      obs::registry().histogram("net.loop_lag_us", latency_bounds_us()).observe(busy_us);
    }
    stalled_ = busy_us > config_.stall_ms * 1000.0;
    if (stalled_) {
      ++stats_.stalled_rounds;
      REMGEN_COUNTER_ADD("net.stalled_rounds", 1);
    }

    if (draining && queue_.empty() && reloads_.empty() && connections_.empty()) break;
  }
  if (slow_log_.is_open()) slow_log_.close();
  util::logf(util::LogLevel::Info, "net", "drained; served {} request(s), {} response(s)",
             stats_.requests, stats_.responses);
}

}  // namespace remgen::net
