#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "store/snapshot.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(util::format("net: fcntl O_NONBLOCK failed: {}",
                                          std::strerror(errno)));
  }
}

}  // namespace

/// One accepted socket. The connection object outlives a half-closed peer
/// while queued work still references it, so pipelined clients that
/// shutdown(SHUT_WR) and then read still receive every response.
struct Server::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  std::string in;             ///< Bytes read, not yet split into lines.
  std::string out;            ///< Response bytes not yet written.
  bool peer_closed = false;   ///< recv saw EOF: no more requests.
  bool broken = false;        ///< Socket error: drop outstanding output.
  std::size_t queued = 0;     ///< queue_/reload entries still owed to this peer.
};

/// One admitted queue entry: either a request waiting for an execution round
/// or an already-built response (parse error, overload, admin result) that
/// only flows through the queue to keep per-connection delivery in order.
struct Server::Pending {
  std::uint64_t conn_id = 0;
  std::optional<serve::Request> request;
  std::shared_ptr<const serve::QueryEngine> engine;  ///< Resolved at admission.
  serve::Response ready;
};

/// A hot snapshot reload in flight on its background thread. The worker only
/// touches its own job fields; the event loop polls `done` and performs the
/// engine swap itself, so the engines_ map stays single-threaded.
struct Server::ReloadJob {
  std::uint64_t conn_id = 0;
  std::int64_t id = -1;
  std::string map;
  std::string path;
  std::string error;
  std::shared_ptr<const serve::QueryEngine> engine;
  std::atomic<bool> done{false};
  std::thread worker;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() {
  finish_reloads(/*wait=*/true);
  for (auto& [id, connection] : connections_) {
    if (connection.fd >= 0) ::close(connection.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::add_engine(std::string name, std::shared_ptr<const serve::QueryEngine> engine) {
  if (engine == nullptr) throw std::runtime_error("net: add_engine: null engine");
  if (default_map_.empty()) default_map_ = name;
  engines_[std::move(name)] = std::move(engine);
}

std::uint16_t Server::bind_and_listen() {
  if (engines_.empty()) throw std::runtime_error("net: no engine registered");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(util::format("net: socket: {}", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error(util::format("net: bad bind address '{}'", config_.bind_address));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw std::runtime_error(util::format("net: bind {}:{}: {}", config_.bind_address,
                                          config_.port, std::strerror(errno)));
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    throw std::runtime_error(util::format("net: listen: {}", std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw std::runtime_error(util::format("net: getsockname: {}", std::strerror(errno)));
  }
  set_nonblocking(listen_fd_);
  port_ = ntohs(bound.sin_port);
  return port_;
}

serve::Response Server::make_error(std::int64_t id, const std::string& message) const {
  serve::Response response;
  response.id = id;
  response.ok = false;
  response.error = message;
  return response;
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: drained.
    }
    if (connections_.size() >= config_.max_connections) {
      ++stats_.connections_rejected;
      REMGEN_COUNTER_ADD("net.connections_rejected", 1);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Connection connection;
    connection.id = next_conn_id_++;
    connection.fd = fd;
    connections_.emplace(connection.id, std::move(connection));
    ++stats_.connections_accepted;
    REMGEN_COUNTER_ADD("net.connections_accepted", 1);
  }
}

void Server::handle_admin(Connection& connection, std::int64_t id, const std::string& type,
                          const obs::Json& doc) {
  if (type == "stats") {
    serve::Response response;
    response.id = id;
    obs::Json::Object body;
    body["connections"] = obs::Json(static_cast<std::int64_t>(connections_.size()));
    body["inflight"] = obs::Json(static_cast<std::int64_t>(queued_requests_));
    body["requests"] = obs::Json(stats_.requests);
    body["responses"] = obs::Json(stats_.responses);
    body["parse_errors"] = obs::Json(stats_.parse_errors);
    body["overload_rejections"] = obs::Json(stats_.overload_rejections);
    body["reload_swaps"] = obs::Json(stats_.reload_swaps);
    body["reload_failures"] = obs::Json(stats_.reload_failures);
    obs::Json::Array maps;
    for (const auto& [name, engine] : engines_) maps.push_back(obs::Json(name));
    body["maps"] = obs::Json(std::move(maps));
    response.body = obs::Json(std::move(body));
    enqueue_response(connection, std::move(response));
    return;
  }
  // type == "reload": {"id":N,"type":"reload","snapshot":"path"[,"map":"m"]}.
  // The response is deferred until the background load finished and the swap
  // happened — it is the client's "new snapshot is live" acknowledgement —
  // and is therefore delivered out of queue order (use a dedicated admin
  // connection when strict pipelining matters).
  if (!doc.contains("snapshot") || !doc.at("snapshot").is_string()) {
    enqueue_response(connection, make_error(id, "reload: missing 'snapshot' path"));
    return;
  }
  const std::string map =
      doc.contains("map") ? doc.at("map").as_string() : default_map_;
  if (engines_.find(map) == engines_.end()) {
    enqueue_response(connection, make_error(id, util::format("reload: unknown map '{}'", map)));
    return;
  }
  for (const auto& job : reloads_) {
    if (job->map == map) {
      enqueue_response(connection,
                       make_error(id, util::format("reload already in progress for map '{}'", map)));
      return;
    }
  }
  auto job = std::make_unique<ReloadJob>();
  job->conn_id = connection.id;
  job->id = id;
  job->map = map;
  job->path = doc.at("snapshot").as_string();
  ++connection.queued;
  ReloadJob* raw = job.get();
  const std::size_t cache_bytes = config_.cache_bytes;
  job->worker = std::thread([raw, cache_bytes] {
    try {
      store::Snapshot snapshot = store::load_snapshot_file(raw->path);
      raw->engine =
          std::make_shared<const serve::QueryEngine>(std::move(snapshot), cache_bytes);
    } catch (const std::exception& e) {
      raw->error = e.what();
    }
    raw->done.store(true, std::memory_order_release);
  });
  reloads_.push_back(std::move(job));
}

void Server::enqueue_response(Connection& connection, serve::Response response) {
  Pending pending;
  pending.conn_id = connection.id;
  pending.ready = std::move(response);
  ++connection.queued;
  queue_.push_back(std::move(pending));
}

void Server::handle_line(Connection& connection, const std::string& line) {
  if (line.empty()) return;
  obs::Json doc;
  serve::Request request;
  try {
    doc = obs::Json::parse(line);
    if (doc.is_object() && doc.contains("type") && doc.at("type").is_string()) {
      const std::string& type = doc.at("type").as_string();
      if (type == "stats" || type == "reload") {
        // Admin types share the id contract with query requests.
        std::int64_t id = -1;
        if (doc.contains("id") && doc.at("id").is_int()) id = doc.at("id").as_int64();
        if (id < 0) {
          ++stats_.parse_errors;
          REMGEN_COUNTER_ADD("net.parse_errors", 1);
          enqueue_response(connection,
                           make_error(-1, "request: 'id' must be a non-negative integer"));
          return;
        }
        handle_admin(connection, id, type, doc);
        return;
      }
    }
    request = serve::parse_request_doc(doc);
  } catch (const std::exception& e) {
    ++stats_.parse_errors;
    REMGEN_COUNTER_ADD("net.parse_errors", 1);
    enqueue_response(connection, make_error(serve::salvage_request_id(line), e.what()));
    return;
  }

  // Admission control: a full queue answers 503-style instead of queueing
  // unboundedly. The response still flows through the queue (it is cheap and
  // preserves per-connection order); only executable work is bounded.
  if (queued_requests_ >= config_.max_inflight) {
    ++stats_.overload_rejections;
    REMGEN_COUNTER_ADD("net.overload_rejections", 1);
    enqueue_response(connection,
                     make_error(request.id, util::format("overloaded: {} requests in flight (503)",
                                                         queued_requests_)));
    return;
  }

  const std::string& map = request.map.has_value() ? *request.map : default_map_;
  const auto engine_it = engines_.find(map);
  if (engine_it == engines_.end()) {
    enqueue_response(connection, make_error(request.id, util::format("unknown map '{}'", map)));
    return;
  }

  Pending pending;
  pending.conn_id = connection.id;
  pending.request = std::move(request);
  pending.engine = engine_it->second;  // Pinned: reloads never touch in-flight work.
  ++connection.queued;
  ++queued_requests_;
  ++stats_.requests;
  REMGEN_COUNTER_ADD("net.requests", 1);
  queue_.push_back(std::move(pending));
}

void Server::read_ready(Connection& connection) {
  char buffer[16384];
  while (true) {
    const ssize_t n = ::recv(connection.fd, buffer, sizeof buffer, 0);
    if (n > 0) {
      connection.in.append(buffer, static_cast<std::size_t>(n));
      if (connection.in.size() > config_.max_line_bytes &&
          connection.in.find('\n') == std::string::npos) {
        util::logf(util::LogLevel::Warn, "net",
                 "closing connection: request line exceeds {} bytes", config_.max_line_bytes);
        connection.broken = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      connection.peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    connection.broken = true;
    return;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = connection.in.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = connection.in.substr(start, newline - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    handle_line(connection, line);
    start = newline + 1;
  }
  connection.in.erase(0, start);
}

void Server::finish_reloads(bool wait) {
  for (auto it = reloads_.begin(); it != reloads_.end();) {
    ReloadJob& job = **it;
    if (wait && job.worker.joinable()) {
      job.worker.join();
    } else if (!job.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (job.worker.joinable()) job.worker.join();
    serve::Response response;
    response.id = job.id;
    if (job.error.empty()) {
      engines_[job.map] = job.engine;  // The atomic-swap moment: next
                                       // admissions pin the new snapshot.
      ++stats_.reload_swaps;
      REMGEN_COUNTER_ADD("net.reload_swaps", 1);
      obs::Json::Object body;
      body["map"] = obs::Json(job.map);
      body["reloaded"] = obs::Json(true);
      response.body = obs::Json(std::move(body));
    } else {
      ++stats_.reload_failures;
      REMGEN_COUNTER_ADD("net.reload_failures", 1);
      response.ok = false;
      response.error = util::format("reload failed: {}", job.error);
    }
    const auto conn_it = connections_.find(job.conn_id);
    if (conn_it != connections_.end()) {
      conn_it->second.out += response.to_jsonl();
      conn_it->second.out += '\n';
      --conn_it->second.queued;
      ++stats_.responses;
      REMGEN_COUNTER_ADD("net.responses", 1);
    }
    it = reloads_.erase(it);
  }
}

void Server::execute_round() {
  if (queue_.empty()) return;
  const std::size_t round_size = std::min(queue_.size(), config_.max_batch);
  std::vector<Pending> round;
  round.reserve(round_size);
  for (std::size_t i = 0; i < round_size; ++i) {
    round.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  // Fan out: group executable entries by their pinned engine (one group in
  // steady state; two only mid-reload or with multiple maps) and run each
  // group through the coalescing batch path on the shared pool.
  std::map<const serve::QueryEngine*, std::vector<std::size_t>> by_engine;
  for (std::size_t i = 0; i < round.size(); ++i) {
    if (round[i].request.has_value()) by_engine[round[i].engine.get()].push_back(i);
  }
  for (const auto& [engine, indices] : by_engine) {
    std::vector<serve::Request> requests;
    requests.reserve(indices.size());
    for (const std::size_t i : indices) requests.push_back(std::move(*round[i].request));
    std::vector<serve::Response> responses = engine->execute_coalesced(requests);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      round[indices[j]].ready = std::move(responses[j]);
      round[indices[j]].request.reset();
    }
    queued_requests_ -= indices.size();
  }

  // Deliver in admission order; per-connection response order is therefore
  // exactly the request order, pipelining included.
  for (Pending& pending : round) {
    const auto it = connections_.find(pending.conn_id);
    if (it == connections_.end()) continue;  // Peer vanished; response unroutable.
    Connection& connection = it->second;
    --connection.queued;
    if (connection.broken) continue;
    connection.out += pending.ready.to_jsonl();
    connection.out += '\n';
    ++stats_.responses;
    REMGEN_COUNTER_ADD("net.responses", 1);
  }
}

void Server::write_ready(Connection& connection) {
  while (!connection.out.empty()) {
    const ssize_t n = ::send(connection.fd, connection.out.data(),
                             connection.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    connection.broken = true;
    return;
  }
}

void Server::close_connection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
  REMGEN_GAUGE_SET("net.connections_open", static_cast<double>(connections_.size()));
}

void Server::run() {
  if (listen_fd_ < 0) bind_and_listen();
  util::logf(util::LogLevel::Info, "net", "serving {} map(s) on {}:{}", engines_.size(),
             config_.bind_address, port_);
  bool accepting = true;
  while (true) {
    const bool draining = shutdown_requested_.load(std::memory_order_relaxed);
    if (draining && accepting) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      accepting = false;
      util::logf(util::LogLevel::Info, "net", "draining {} queued request(s) over {} connection(s)",
                 queue_.size(), connections_.size());
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // fds[i + offset] -> connection id
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_offset = fds.size();
    for (auto& [conn_id, connection] : connections_) {
      short events = 0;
      // Backpressure: stop reading while this peer's unwritten output is
      // over budget or the server is draining.
      if (!connection.peer_closed && !draining &&
          connection.out.size() < config_.max_buffered_bytes) {
        events |= POLLIN;
      }
      if (!connection.out.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({connection.fd, events, 0});
      fd_conn.push_back(conn_id);
    }

    // Work is already queued (or reloads may finish): poll only as a quick
    // readiness probe; otherwise sleep until traffic or the timeout.
    const int timeout =
        (!queue_.empty() || !reloads_.empty()) ? 0 : config_.poll_timeout_ms;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error(util::format("net: poll: {}", std::strerror(errno)));
    }

    if (ready > 0) {
      if (accepting && (fds[0].revents & POLLIN) != 0) accept_ready();
      for (std::size_t i = 0; i < fd_conn.size(); ++i) {
        const auto it = connections_.find(fd_conn[i]);
        if (it == connections_.end()) continue;
        const short revents = fds[conn_offset + i].revents;
        if ((revents & (POLLERR | POLLNVAL)) != 0) it->second.broken = true;
        if ((revents & (POLLIN | POLLHUP)) != 0 && !it->second.broken &&
            !it->second.peer_closed) {
          read_ready(it->second);
        }
        if ((revents & POLLOUT) != 0 && !it->second.broken) write_ready(it->second);
      }
    }

    finish_reloads(/*wait=*/false);
    execute_round();

    // Flush opportunistically after executing — most responses fit the
    // socket buffer and go out without waiting for the next POLLOUT round.
    std::vector<std::uint64_t> to_close;
    for (auto& [conn_id, connection] : connections_) {
      if (!connection.out.empty() && !connection.broken) write_ready(connection);
      const bool done_sending = connection.out.empty() && connection.queued == 0;
      if (connection.broken || (connection.peer_closed && done_sending) ||
          (draining && done_sending)) {
        to_close.push_back(conn_id);
      }
    }
    for (const std::uint64_t conn_id : to_close) close_connection(conn_id);
    REMGEN_GAUGE_SET("net.connections_open", static_cast<double>(connections_.size()));
    REMGEN_GAUGE_SET("net.inflight", static_cast<double>(queued_requests_));

    if (draining && queue_.empty() && reloads_.empty() && connections_.empty()) break;
  }
  util::logf(util::LogLevel::Info, "net", "drained; served {} request(s), {} response(s)",
             stats_.requests, stats_.responses);
}

}  // namespace remgen::net
