// remgen-served: the long-running network half of the serve layer.
//
// A poll()-based event loop on the calling thread accepts TCP connections
// and speaks the serve JSONL protocol (src/serve/request.hpp) framed as
// newline-delimited JSON: clients pipeline any number of request lines and
// receive one response line per request, delivered per connection in request
// order. Parsed requests are admitted into a bounded in-flight queue
// (admission control: requests beyond the bound are answered immediately
// with an ok=false "overloaded" 503-style response instead of queueing
// without limit) and executed in rounds fanned out to the shared
// exec::ThreadPool via QueryEngine::execute_coalesced, which merges point
// queries for the same MAC into one batched model call. Responses are byte-
// identical to offline `remgen-serve` replay of the same lines.
//
// Snapshot discipline: the server holds one std::shared_ptr<const
// QueryEngine> per named map. Only the event-loop thread reads or swaps
// those pointers; a hot reload ({"type":"reload",...}) loads the new REMSNAP
// and constructs its engine on a background thread, then hands the finished
// shared_ptr back to the event loop, which swaps it in between execution
// rounds. Requests already admitted resolved their engine pointer at
// admission, so everything in flight finishes on the old snapshot — zero
// drops, zero mixed-snapshot batches — and the old engine is freed when the
// last in-flight holder releases it.
//
// Live observability plane: every admitted query is stamped through its
// lifecycle (read/admit -> dequeue -> exec start/end -> response enqueued ->
// bytes flushed), feeding net.queue_wait_us / net.exec_us /
// net.write_stall_us histograms (global + per request type + per map) and
// rolling windows (obs::WindowedHistogram, default 12 x 5 s) from which qps,
// p50/p90/p99/p99.9 and cache hit rate over the last minute are derived. Two
// in-flight scrape surfaces expose it: a "metrics" admin request on the
// JSONL framing (the Prometheus text rides inside one JSON line) and an
// optional plain-HTTP listener (`http_metrics_port`) answering GET /metrics
// with text exposition. Both are served from the event loop between rounds —
// a scrape is a registry snapshot plus gauge refresh, never an engine
// execution, so it cannot block request rounds. Slow requests (total latency
// >= slow_ms) are sampled into a JSONL log carrying the per-stage micros.
// All windowed state is single-writer (event-loop thread); the metrics
// registry itself is internally synchronised.
//
// Shutdown: request_shutdown() (async-signal-safe; call it from a SIGTERM/
// SIGINT handler) makes the loop stop accepting, drain the queue, flush
// every write buffer, and return. No admitted request is dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/window.hpp"
#include "serve/engine.hpp"

namespace remgen::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";  ///< Loopback by default; opt into exposure.
  std::uint16_t port = 0;                  ///< 0 = ephemeral (see Server::port()).
  int backlog = 128;
  std::size_t max_connections = 1024;   ///< Accepted beyond this are closed at once.
  std::size_t max_inflight = 4096;      ///< Admitted-request bound (admission control).
  std::size_t max_batch = 512;          ///< Requests executed per pool round.
  std::size_t max_line_bytes = 1 << 20; ///< A longer request line closes the connection.
  std::size_t max_buffered_bytes = 4 << 20;  ///< Per-connection write-buffer cap:
                                             ///< reading pauses until it drains.
  int poll_timeout_ms = 50;             ///< Reload-completion / shutdown latency bound.
  std::size_t cache_bytes = 64 << 20;   ///< Result-cache budget for reloaded engines.

  // Live observability plane.
  int http_metrics_port = -1;        ///< >= 0 enables the HTTP GET /metrics
                                     ///< listener (0 = ephemeral; Server::http_port()).
  std::string slow_log_path;         ///< Non-empty enables the slow-request JSONL log.
  double slow_ms = 0.0;              ///< Slow threshold on total latency (0 logs all).
  std::size_t slow_log_sample = 1;   ///< Log every Nth request over the threshold.
  std::size_t window_count = 12;     ///< Rolling-window ring size...
  double window_span_s = 5.0;        ///< ...of sub-windows this long (12 x 5 s = 1 min).
  double stall_ms = 250.0;           ///< Loop iteration busy time counted as a stall.
};

/// Counters mirrored into net.* metrics; stable across stats() calls.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< Over max_connections.
  std::uint64_t requests = 0;              ///< Lines admitted for execution.
  std::uint64_t responses = 0;             ///< Lines written back (incl. errors).
  std::uint64_t parse_errors = 0;
  std::uint64_t overload_rejections = 0;
  std::uint64_t reload_swaps = 0;
  std::uint64_t reload_failures = 0;
  std::uint64_t publish_swaps = 0;     ///< Engines hot-published via publish().
  std::uint64_t cache_hits = 0;        ///< Engine-cache hits, summed per round.
  std::uint64_t cache_misses = 0;
  std::uint64_t metrics_scrapes = 0;   ///< Admin "metrics" + HTTP scrapes served.
  std::uint64_t stalled_rounds = 0;    ///< Loop iterations busier than stall_ms.
  std::uint64_t slow_logged = 0;       ///< Entries written to the slow log.
};

/// Lifetime request/cache tallies for one named map.
struct MapStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;        ///< ok=false responses among those.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Single-threaded event loop + pool-executed request rounds over one or
/// more named QueryEngines. Not thread-safe except request_shutdown().
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers (or replaces) the engine served under `name`. The first
  /// registered name becomes the default map for requests without a "map"
  /// field. Must not be called while run() is active.
  void add_engine(std::string name, std::shared_ptr<const serve::QueryEngine> engine);

  /// Thread-safe hot publish: hands a finished engine (e.g. a freshly built
  /// ingest epoch) to the event loop, which swaps it in between execution
  /// rounds under the same zero-drop discipline as a reload — in-flight
  /// requests pinned the old engine at admission and finish on it. New maps
  /// are registered on first publish (becoming the default map when none
  /// exists yet, so a publish before bind_and_listen() is enough to serve).
  /// `epoch` is the monotonic snapshot version surfaced in "stats" and the
  /// net.map.<name>.epoch gauge.
  void publish(std::string name, std::shared_ptr<const serve::QueryEngine> engine,
               std::uint64_t epoch);

  /// Binds and listens; returns the bound port (resolves port 0). Throws
  /// std::runtime_error on socket failures or when no engine is registered.
  /// Also binds the HTTP metrics listener when configured.
  std::uint16_t bind_and_listen();

  /// Runs the event loop until request_shutdown(), then drains: admitted
  /// requests execute, every response line is flushed, connections close.
  void run();

  /// Async-signal-safe shutdown trigger; the loop notices within
  /// poll_timeout_ms.
  void request_shutdown() noexcept { shutdown_requested_.store(true); }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Bound HTTP metrics port; 0 when the listener is disabled.
  [[nodiscard]] std::uint16_t http_port() const noexcept { return http_port_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::map<std::string, MapStats>& map_stats() const noexcept {
    return map_stats_;
  }
  /// Current published epoch per map (0 until the first publish()).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& map_epochs() const noexcept {
    return map_epochs_;
  }

 private:
  struct Connection;
  struct Pending;
  struct ReloadJob;

  /// One engine handed over by publish(), waiting for the event-loop swap.
  struct PublishJob {
    std::string map;
    std::shared_ptr<const serve::QueryEngine> engine;
    std::uint64_t epoch = 0;
  };

  /// Per-request lifecycle stamps (microseconds on the server's monotonic
  /// clock, 0 = not reached). Attached to executable queue entries only.
  struct Lifecycle {
    std::int64_t id = 0;
    const char* type = "point";      ///< Request type label for metric names.
    std::string map;                 ///< Resolved map name.
    std::size_t points = 1;          ///< Batch size (points carried).
    double admit_us = 0.0;           ///< Line parsed and admitted.
    double dequeue_us = 0.0;         ///< Popped into an execution round.
    double exec_start_us = 0.0;      ///< Round fan-out began for its engine group.
    double exec_end_us = 0.0;        ///< Engine group finished.
    double enqueue_us = 0.0;         ///< Response bytes appended to the write buffer.
    std::uint64_t round_cache_hits = 0;  ///< Engine-cache hit delta of its round.
    std::size_t round_size = 0;          ///< Requests executed in its round.
  };

  [[nodiscard]] double now_us() const;

  void accept_ready(int fd, bool http);
  void read_ready(Connection& connection);
  void http_read_ready(Connection& connection);
  void handle_line(Connection& connection, const std::string& line);
  void enqueue_response(Connection& connection, serve::Response response);
  void handle_admin(Connection& connection, std::int64_t id, const std::string& type,
                    const obs::Json& doc);
  void finish_reloads(bool wait);
  /// Drains publish() handovers on the event-loop thread and swaps engines_.
  void finish_publishes();
  void execute_round();
  void append_output(Connection& connection, const std::string& bytes);
  void write_ready(Connection& connection);
  /// Pops write records whose bytes have reached the socket; observes
  /// write-stall and total latency, feeds the windows and the slow log.
  void complete_writes(Connection& connection);
  void close_connection(std::uint64_t conn_id);
  [[nodiscard]] serve::Response make_error(std::int64_t id, const std::string& message) const;

  /// Refreshes the live gauges (windowed tails, qps, cache hit rate, per-map
  /// series, limits) in the global registry, then renders text exposition.
  [[nodiscard]] std::string prometheus_text();
  void refresh_live_metrics(double now_s);
  void observe_life_histogram(const char* base, const Lifecycle& life, double value_us);
  void maybe_slow_log(const Lifecycle& life, double total_us, double write_stall_us,
                      double now_s);

  [[nodiscard]] static int listen_on(const std::string& address, std::uint16_t port,
                                     int backlog, std::uint16_t* bound_port);

  ServerConfig config_;
  std::string default_map_;
  std::map<std::string, std::shared_ptr<const serve::QueryEngine>> engines_;

  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;
  std::deque<Pending> queue_;           ///< FIFO of admitted work (front = oldest).
  std::size_t queued_requests_ = 0;     ///< Entries in queue_ that still need execution.
  std::vector<std::unique_ptr<ReloadJob>> reloads_;
  std::mutex publish_mutex_;            ///< Guards publishes_ only (cross-thread handover).
  std::vector<PublishJob> publishes_;   ///< Engines awaiting the event-loop swap.
  ServerStats stats_;
  std::map<std::string, MapStats> map_stats_;
  std::map<std::string, std::uint64_t> map_epochs_;  ///< Event-loop thread only.
  std::atomic<bool> shutdown_requested_{false};

  // Live observability state — event-loop thread only.
  std::chrono::steady_clock::time_point start_time_;
  obs::WindowedHistogram win_latency_us_;   ///< Admit -> bytes-on-socket latency.
  obs::WindowedHistogram win_loop_lag_us_;  ///< Busy time of each loop iteration.
  obs::WindowedCounter win_responses_;      ///< Executed query responses (qps source).
  obs::WindowedCounter win_cache_hits_;
  obs::WindowedCounter win_cache_misses_;
  bool stalled_ = false;                ///< Last loop iteration exceeded stall_ms.
  std::size_t buffered_bytes_ = 0;      ///< Sum of unwritten output, last iteration.
  std::ofstream slow_log_;
  std::uint64_t slow_seen_ = 0;         ///< Requests over the threshold (pre-sampling).
};

}  // namespace remgen::net
