// remgen-served: the long-running network half of the serve layer.
//
// A poll()-based event loop on the calling thread accepts TCP connections
// and speaks the serve JSONL protocol (src/serve/request.hpp) framed as
// newline-delimited JSON: clients pipeline any number of request lines and
// receive one response line per request, delivered per connection in request
// order. Parsed requests are admitted into a bounded in-flight queue
// (admission control: requests beyond the bound are answered immediately
// with an ok=false "overloaded" 503-style response instead of queueing
// without limit) and executed in rounds fanned out to the shared
// exec::ThreadPool via QueryEngine::execute_coalesced, which merges point
// queries for the same MAC into one batched model call. Responses are byte-
// identical to offline `remgen-serve` replay of the same lines.
//
// Snapshot discipline: the server holds one std::shared_ptr<const
// QueryEngine> per named map. Only the event-loop thread reads or swaps
// those pointers; a hot reload ({"type":"reload",...}) loads the new REMSNAP
// and constructs its engine on a background thread, then hands the finished
// shared_ptr back to the event loop, which swaps it in between execution
// rounds. Requests already admitted resolved their engine pointer at
// admission, so everything in flight finishes on the old snapshot — zero
// drops, zero mixed-snapshot batches — and the old engine is freed when the
// last in-flight holder releases it.
//
// Shutdown: request_shutdown() (async-signal-safe; call it from a SIGTERM/
// SIGINT handler) makes the loop stop accepting, drain the queue, flush
// every write buffer, and return. No admitted request is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace remgen::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";  ///< Loopback by default; opt into exposure.
  std::uint16_t port = 0;                  ///< 0 = ephemeral (see Server::port()).
  int backlog = 128;
  std::size_t max_connections = 1024;   ///< Accepted beyond this are closed at once.
  std::size_t max_inflight = 4096;      ///< Admitted-request bound (admission control).
  std::size_t max_batch = 512;          ///< Requests executed per pool round.
  std::size_t max_line_bytes = 1 << 20; ///< A longer request line closes the connection.
  std::size_t max_buffered_bytes = 4 << 20;  ///< Per-connection write-buffer cap:
                                             ///< reading pauses until it drains.
  int poll_timeout_ms = 50;             ///< Reload-completion / shutdown latency bound.
  std::size_t cache_bytes = 64 << 20;   ///< Result-cache budget for reloaded engines.
};

/// Counters mirrored into net.* metrics; stable across stats() calls.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< Over max_connections.
  std::uint64_t requests = 0;              ///< Lines admitted for execution.
  std::uint64_t responses = 0;             ///< Lines written back (incl. errors).
  std::uint64_t parse_errors = 0;
  std::uint64_t overload_rejections = 0;
  std::uint64_t reload_swaps = 0;
  std::uint64_t reload_failures = 0;
};

/// Single-threaded event loop + pool-executed request rounds over one or
/// more named QueryEngines. Not thread-safe except request_shutdown().
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers (or replaces) the engine served under `name`. The first
  /// registered name becomes the default map for requests without a "map"
  /// field. Must not be called while run() is active.
  void add_engine(std::string name, std::shared_ptr<const serve::QueryEngine> engine);

  /// Binds and listens; returns the bound port (resolves port 0). Throws
  /// std::runtime_error on socket failures or when no engine is registered.
  std::uint16_t bind_and_listen();

  /// Runs the event loop until request_shutdown(), then drains: admitted
  /// requests execute, every response line is flushed, connections close.
  void run();

  /// Async-signal-safe shutdown trigger; the loop notices within
  /// poll_timeout_ms.
  void request_shutdown() noexcept { shutdown_requested_.store(true); }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }

 private:
  struct Connection;
  struct Pending;
  struct ReloadJob;

  void accept_ready();
  void read_ready(Connection& connection);
  void handle_line(Connection& connection, const std::string& line);
  void enqueue_response(Connection& connection, serve::Response response);
  void handle_admin(Connection& connection, std::int64_t id, const std::string& type,
                    const obs::Json& doc);
  void finish_reloads(bool wait);
  void execute_round();
  void write_ready(Connection& connection);
  void close_connection(std::uint64_t conn_id);
  [[nodiscard]] serve::Response make_error(std::int64_t id, const std::string& message) const;

  ServerConfig config_;
  std::string default_map_;
  std::map<std::string, std::shared_ptr<const serve::QueryEngine>> engines_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;
  std::deque<Pending> queue_;           ///< FIFO of admitted work (front = oldest).
  std::size_t queued_requests_ = 0;     ///< Entries in queue_ that still need execution.
  std::vector<std::unique_ptr<ReloadJob>> reloads_;
  ServerStats stats_;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace remgen::net
