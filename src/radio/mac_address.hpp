// IEEE 802 MAC addresses: value type, formatting, parsing, random generation.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace remgen::radio {

/// 48-bit MAC address value type.
class MacAddress {
 public:
  /// All-zero address.
  constexpr MacAddress() = default;

  /// From six octets.
  constexpr explicit MacAddress(const std::array<std::uint8_t, 6>& octets) : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive); nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  /// Generates a random locally-administered unicast address.
  [[nodiscard]] static MacAddress random(util::Rng& rng);

  /// Canonical lower-case "aa:bb:cc:dd:ee:ff".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const noexcept { return octets_; }

  /// Packs the address into the low 48 bits of a u64 (big-endian octet order).
  [[nodiscard]] std::uint64_t to_u64() const noexcept;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace remgen::radio

template <>
struct std::hash<remgen::radio::MacAddress> {
  std::size_t operator()(const remgen::radio::MacAddress& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.to_u64());
  }
};
