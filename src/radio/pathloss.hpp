// Large-scale path-loss models for indoor propagation.
//
// The primary model is a multi-wall log-distance model (COST-231 MWM
// flavour): free-space-like log-distance attenuation plus the summed
// penetration losses of every wall crossed by the direct path. A plain
// log-distance model is provided for comparison/ablation.
#pragma once

#include <memory>

#include "geom/floorplan.hpp"
#include "geom/vec3.hpp"

namespace remgen::radio {

/// Interface: deterministic large-scale path loss between two points, in dB.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Path loss in dB (>= 0) from transmitter at `tx` to receiver at `rx`.
  [[nodiscard]] virtual double loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const = 0;
};

/// Log-distance model: PL(d) = PL(d0) + 10 n log10(d / d0).
class LogDistanceModel final : public PathLossModel {
 public:
  /// `exponent` is the path-loss exponent n (>= 1), `reference_loss_db` the
  /// loss at d0 = 1 m (at 2.44 GHz free space this is ~40.2 dB).
  explicit LogDistanceModel(double exponent = 2.0, double reference_loss_db = 40.2);

  [[nodiscard]] double loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const override;

  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  double reference_loss_db_;
};

/// Multi-wall model: log-distance with exponent ~2 plus per-wall penetration
/// losses from the floorplan.
class MultiWallModel final : public PathLossModel {
 public:
  /// The floorplan must outlive the model.
  MultiWallModel(const geom::Floorplan& floorplan, double exponent = 2.0,
                 double reference_loss_db = 40.2);

  [[nodiscard]] double loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const override;

  /// Wall-only part of the loss (useful in tests).
  [[nodiscard]] double wall_loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const;

 private:
  const geom::Floorplan* floorplan_;
  LogDistanceModel base_;
};

}  // namespace remgen::radio
