// Crazyradio (nRF24LU1) self-interference model.
//
// The paper's Figure 5 shows that a transmitting Crazyradio mounted
// centimetres from the ESP8266 scanner significantly reduces the number of
// detected APs on *every* Wi-Fi channel, worst where the carrier overlaps the
// channel. Two effects are modelled:
//   1. co-channel collisions: the ~2 MHz GFSK carrier corrupts beacons on
//      overlapping Wi-Fi channels in proportion to spectral overlap;
//   2. broadband receiver desensitisation: a strong (-20 dBm-ish at the
//      antenna) near-field carrier compresses the scanner's front end and
//      raises its effective noise floor band-wide.
// Both are expressed as a per-channel probability that an individual beacon
// is lost, scaled by the radio's transmit duty cycle.
#pragma once

#include "radio/channel.hpp"
#include "util/contracts.hpp"

namespace remgen::radio {

/// Crazyradio CRTP carrier parameters relevant to interference.
struct CrazyradioConfig {
  double carrier_mhz = 2450.0;  ///< nRF24 channel centre (2400-2525 MHz).
  double carrier_bw_mhz = 2.0;  ///< Occupied bandwidth of the GFSK carrier.
  double duty_cycle = 0.80;     ///< Fraction of time the link is on air
                                ///< (CRTP polls continuously).
  double inband_loss = 0.95;    ///< Beacon-loss probability at full spectral
                                ///< overlap while the carrier is on air.
  double desense_loss = 0.55;   ///< Beacon-loss probability far from the
                                ///< carrier (front-end desense), on air.
};

/// Interference state of the Crazyradio as seen by a co-located scanner.
class CrazyradioInterference {
 public:
  explicit CrazyradioInterference(CrazyradioConfig config = {}) : config_(config) {
    REMGEN_EXPECTS(config.duty_cycle >= 0.0 && config.duty_cycle <= 1.0);
    REMGEN_EXPECTS(config.inband_loss >= 0.0 && config.inband_loss <= 1.0);
    REMGEN_EXPECTS(config.desense_loss >= 0.0 && config.desense_loss <= 1.0);
  }

  /// Turns the radio on/off (the paper's key mitigation is turning it off
  /// during scans).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Retunes the carrier (MHz). Valid Crazyradio range is 2400-2525.
  void set_carrier_mhz(double mhz) {
    REMGEN_EXPECTS(mhz >= 2400.0 && mhz <= 2525.0);
    config_.carrier_mhz = mhz;
  }
  [[nodiscard]] double carrier_mhz() const noexcept { return config_.carrier_mhz; }

  [[nodiscard]] const CrazyradioConfig& config() const noexcept { return config_; }

  /// Probability that one beacon on Wi-Fi `channel` is lost to this
  /// interferer. Zero when the radio is off.
  [[nodiscard]] double beacon_loss_probability(int channel) const;

  /// Same for an arbitrary victim band (e.g. a BLE advertising channel).
  [[nodiscard]] double beacon_loss_probability_mhz(double victim_mhz,
                                                   double victim_bw_mhz) const;

 private:
  CrazyradioConfig config_;
  bool enabled_ = true;
};

}  // namespace remgen::radio
