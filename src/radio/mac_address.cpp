#include "radio/mac_address.hpp"

#include <cctype>

#include "util/fmt.hpp"

namespace remgen::radio {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const int hi = hex_digit(text[static_cast<std::size_t>(i * 3)]);
    const int lo = hex_digit(text[static_cast<std::size_t>(i * 3 + 1)]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (i < 5 && text[static_cast<std::size_t>(i * 3 + 2)] != ':') return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return MacAddress(octets);
}

MacAddress MacAddress::random(util::Rng& rng) {
  std::array<std::uint8_t, 6> octets{};
  const std::uint64_t bits = rng.bits();
  for (int i = 0; i < 6; ++i) {
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  octets[0] = static_cast<std::uint8_t>((octets[0] | 0x02u) & 0xFEu);  // local, unicast
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  return util::format("{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", octets_[0], octets_[1],
                      octets_[2], octets_[3], octets_[4], octets_[5]);
}

std::uint64_t MacAddress::to_u64() const noexcept {
  std::uint64_t v = 0;
  for (const std::uint8_t o : octets_) v = (v << 8) | o;
  return v;
}

}  // namespace remgen::radio
