// Bluetooth Low Energy advertisement environment.
//
// The paper's modular design requirement: "a simple integration of different
// REM-sampling device (e.g., Wi-Fi, LoRa, BLE, mmWave) with the UAV,
// extending the REM capabilities beyond the traditional Wi-Fi." This is the
// BLE instantiation of the RF ground truth: advertisers (beacons, wearables,
// TVs, peripherals) broadcast on the three 2.4 GHz advertising channels
// (37/38/39); an observer dwelling on those channels captures ADV packets
// whose RSSI it reports. Propagation reuses the same multi-wall + shadowing
// + fading machinery as the Wi-Fi environment.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/floorplan.hpp"
#include "radio/interference.hpp"
#include "radio/mac_address.hpp"
#include "radio/pathloss.hpp"
#include "radio/shadowing.hpp"
#include "util/rng.hpp"

namespace remgen::radio {

/// The three BLE advertising channels.
inline constexpr std::array<int, 3> kBleAdvChannels{37, 38, 39};

/// Occupied bandwidth of a BLE channel in MHz.
inline constexpr double kBleChannelBandwidthMhz = 2.0;

/// Centre frequency of a BLE advertising channel (37, 38 or 39).
[[nodiscard]] double ble_adv_channel_center_mhz(int channel);

/// One BLE advertiser.
struct BleDevice {
  MacAddress address;          ///< Random static address.
  std::string name;            ///< Shortened local name from the ADV payload.
  double tx_power_dbm = 0.0;   ///< Typical beacon/peripheral power.
  geom::Vec3 position;
  double adv_interval_s = 0.2; ///< Advertising interval (20 ms - 10 s legal).
};

/// Stochastic-process tunables (BLE's 1 Mb/s GFSK is a little more sensitive
/// than Wi-Fi DSSS beacons).
struct BleEnvironmentConfig {
  double pathloss_exponent = 2.0;
  double reference_loss_db = 40.2;
  double clutter_db_per_m = 1.4;
  double shadowing_sigma_db = 2.0;
  double shadowing_decorrelation_m = 1.3;
  double fading_sigma_db = 3.8;
  double noise_floor_dbm = -98.0;
  double snr50_db = 3.0;
  double snr_slope_db = 1.5;
};

/// One advertiser detected during a scan window.
struct BleDetection {
  std::size_t device_index;  ///< Index into BleEnvironment::devices().
  double rss_dbm;
  int channel;               ///< Advertising channel the packet decoded on.
};

/// Immutable-after-construction BLE ground truth.
class BleEnvironment {
 public:
  /// `floorplan` must outlive the environment.
  BleEnvironment(const geom::Floorplan& floorplan, std::vector<BleDevice> devices,
                 const geom::Aabb& shadowing_bounds, const BleEnvironmentConfig& config,
                 util::Rng& rng);

  [[nodiscard]] const std::vector<BleDevice>& devices() const noexcept { return devices_; }
  [[nodiscard]] const BleEnvironmentConfig& config() const noexcept { return config_; }

  /// Deterministic mean RSS of device i at point p.
  [[nodiscard]] double mean_rss_dbm(std::size_t device_index, const geom::Vec3& p) const;

  /// Probability that one ADV packet received at `rss_dbm` decodes.
  [[nodiscard]] double adv_decode_probability(double rss_dbm) const;

  /// One passive scan: the observer dwells `scan_duration_s / 3` on each
  /// advertising channel; a device is reported if at least one of its ADV
  /// packets decodes. Each advertising event transmits on all three channels,
  /// so a device's detection channel is whichever dwell caught it first.
  [[nodiscard]] std::vector<BleDetection> scan(const geom::Vec3& position,
                                               double scan_duration_s,
                                               const CrazyradioInterference* interference,
                                               util::Rng& rng) const;

 private:
  const geom::Floorplan* floorplan_;
  std::vector<BleDevice> devices_;
  BleEnvironmentConfig config_;
  MultiWallModel pathloss_;
  std::vector<ShadowingField> shadowing_;
};

/// Parameters of the synthetic BLE population.
struct BlePopulationConfig {
  std::size_t device_count = 28;  ///< Beacons, wearables, TVs, peripherals.
  double tx_power_mean_dbm = -1.0;
  double tx_power_sigma_db = 4.0;
};

/// Generates a BLE population over the building: a few devices in the own
/// apartment (trackers, a TV) plus neighbours' devices skewed toward the
/// building core, mirroring the Wi-Fi population's geometry.
[[nodiscard]] std::vector<BleDevice> make_ble_population(const geom::Aabb& building_bounds,
                                                         const BlePopulationConfig& config,
                                                         util::Rng& rng);

}  // namespace remgen::radio
