#include "radio/interference.hpp"

namespace remgen::radio {

double CrazyradioInterference::beacon_loss_probability(int channel) const {
  return beacon_loss_probability_mhz(wifi_channel_center_mhz(channel),
                                     kWifiChannelBandwidthMhz);
}

double CrazyradioInterference::beacon_loss_probability_mhz(double victim_mhz,
                                                           double victim_bw_mhz) const {
  if (!enabled_) return 0.0;
  const double overlap = carrier_overlap_fraction_mhz(config_.carrier_mhz,
                                                      config_.carrier_bw_mhz, victim_mhz,
                                                      victim_bw_mhz);
  // Blend between far-carrier desense and full co-channel corruption.
  const double on_air_loss =
      config_.desense_loss + (config_.inband_loss - config_.desense_loss) * overlap;
  return config_.duty_cycle * on_air_loss;
}

}  // namespace remgen::radio
