#include "radio/ble.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::radio {

double ble_adv_channel_center_mhz(int channel) {
  switch (channel) {
    case 37: return 2402.0;
    case 38: return 2426.0;
    case 39: return 2480.0;
  }
  REMGEN_EXPECTS(false && "not a BLE advertising channel");
  return 0.0;
}

BleEnvironment::BleEnvironment(const geom::Floorplan& floorplan, std::vector<BleDevice> devices,
                               const geom::Aabb& shadowing_bounds,
                               const BleEnvironmentConfig& config, util::Rng& rng)
    : floorplan_(&floorplan),
      devices_(std::move(devices)),
      config_(config),
      pathloss_(floorplan, config.pathloss_exponent, config.reference_loss_db) {
  shadowing_.reserve(devices_.size());
  for (const BleDevice& d : devices_) {
    REMGEN_EXPECTS(d.adv_interval_s > 0.0);
    util::Rng child = rng.fork("ble-shadowing-" + d.address.to_string());
    shadowing_.emplace_back(shadowing_bounds, config.shadowing_sigma_db,
                            config.shadowing_decorrelation_m, child);
  }
}

double BleEnvironment::mean_rss_dbm(std::size_t device_index, const geom::Vec3& p) const {
  REMGEN_EXPECTS(device_index < devices_.size());
  const BleDevice& d = devices_[device_index];
  const double distance = d.position.distance_to(p);
  const double clutter = config_.clutter_db_per_m * std::max(0.0, distance - 1.0);
  return d.tx_power_dbm - pathloss_.loss_db(d.position, p) - clutter +
         shadowing_[device_index].at(p);
}

double BleEnvironment::adv_decode_probability(double rss_dbm) const {
  const double snr = rss_dbm - config_.noise_floor_dbm;
  const double x = (snr - config_.snr50_db) / config_.snr_slope_db;
  return 1.0 / (1.0 + std::exp(-x));
}

std::vector<BleDetection> BleEnvironment::scan(const geom::Vec3& position,
                                               double scan_duration_s,
                                               const CrazyradioInterference* interference,
                                               util::Rng& rng) const {
  REMGEN_EXPECTS(scan_duration_s > 0.0);
  const double dwell_s = scan_duration_s / static_cast<double>(kBleAdvChannels.size());

  std::vector<BleDetection> detections;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const BleDevice& device = devices_[i];
    const double mean = mean_rss_dbm(i, position);
    if (adv_decode_probability(mean + 5.0 * config_.fading_sigma_db) < 1e-4) continue;

    // Each advertising event hits all three channels; the observer catches
    // events that land inside one of its per-channel dwells.
    double best_rss = -1e9;
    int detected_channel = 0;
    for (const int channel : kBleAdvChannels) {
      const double loss_prob =
          interference != nullptr
              ? interference->beacon_loss_probability_mhz(ble_adv_channel_center_mhz(channel),
                                                          kBleChannelBandwidthMhz)
              : 0.0;
      const std::uint32_t events = rng.poisson(dwell_s / device.adv_interval_s);
      for (std::uint32_t e = 0; e < events; ++e) {
        const double rss = mean + rng.gaussian(0.0, config_.fading_sigma_db);
        if (!rng.bernoulli(adv_decode_probability(rss))) continue;
        if (loss_prob > 0.0 && rng.bernoulli(loss_prob)) continue;
        if (detected_channel == 0) detected_channel = channel;
        best_rss = std::max(best_rss, rss);
      }
    }
    if (detected_channel != 0) {
      detections.push_back({i, std::round(best_rss * 4.0) / 4.0, detected_channel});
    }
  }
  return detections;
}

std::vector<BleDevice> make_ble_population(const geom::Aabb& building_bounds,
                                           const BlePopulationConfig& config, util::Rng& rng) {
  REMGEN_EXPECTS(config.device_count > 0);
  static constexpr const char* kKinds[] = {"tile", "band", "tv", "buds", "scale", "tag", "hub"};

  std::vector<BleDevice> devices;
  devices.reserve(config.device_count);
  for (std::size_t i = 0; i < config.device_count; ++i) {
    BleDevice d;
    d.address = MacAddress::random(rng);
    d.name = util::format("{}-{:02d}", kKinds[rng.index(std::size(kKinds))], i);
    d.tx_power_dbm = rng.gaussian(config.tx_power_mean_dbm, config.tx_power_sigma_db);
    d.adv_interval_s = rng.uniform(0.1, 1.0);
    if (i < 4) {
      // Own-apartment devices.
      d.position = {rng.uniform(0.3, 3.5), rng.uniform(0.3, 3.0), rng.uniform(0.2, 1.8)};
    } else {
      // Neighbours, skewed toward the building core like the Wi-Fi APs.
      const double u = rng.uniform01();
      if (u < 0.5) {
        d.position = {rng.uniform(6.0, building_bounds.max.x - 0.5), rng.uniform(-8.0, 5.0),
                      0.0};
      } else if (u < 0.8) {
        d.position = {rng.uniform(-2.0, 3.0), rng.uniform(building_bounds.min.y + 0.5, -2.0),
                      0.0};
      } else {
        d.position = {rng.uniform(-2.0, 6.0), rng.uniform(-4.0, 6.0), 0.0};
      }
      const double floor_z = rng.bernoulli(0.5) ? 0.0 : (rng.bernoulli(0.5) ? 2.6 : -2.6);
      d.position.z = floor_z + rng.uniform(0.2, 1.8);
    }
    devices.push_back(std::move(d));
  }
  return devices;
}

}  // namespace remgen::radio
