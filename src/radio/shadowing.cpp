#include "radio/shadowing.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace remgen::radio {

ShadowingField::ShadowingField(const geom::Aabb& bounds, double sigma_db, double decorrelation_m,
                               util::Rng& rng)
    : bounds_(bounds), sigma_db_(sigma_db), decorrelation_m_(decorrelation_m) {
  REMGEN_EXPECTS(sigma_db >= 0.0);
  REMGEN_EXPECTS(decorrelation_m > 0.0);
  const geom::Vec3 size = bounds.size();
  auto nodes_for = [decorrelation_m](double extent) {
    return static_cast<std::size_t>(std::ceil(extent / decorrelation_m)) + 2;
  };
  nx_ = nodes_for(size.x);
  ny_ = nodes_for(size.y);
  nz_ = nodes_for(size.z);
  nodes_.resize(nx_ * ny_ * nz_);
  for (double& v : nodes_) v = rng.gaussian(0.0, sigma_db);
}

double ShadowingField::node(std::size_t ix, std::size_t iy, std::size_t iz) const {
  return nodes_[(iz * ny_ + iy) * nx_ + ix];
}

double ShadowingField::at(const geom::Vec3& p) const {
  if (sigma_db_ == 0.0) return 0.0;
  const geom::Vec3 q = bounds_.clamp(p);
  const geom::Vec3 rel = q - bounds_.min;

  auto axis = [this](double value, std::size_t n) {
    double u = value / decorrelation_m_;
    const double max_u = static_cast<double>(n - 1);
    u = std::clamp(u, 0.0, max_u - 1e-9);
    const auto i0 = static_cast<std::size_t>(u);
    return std::pair<std::size_t, double>{i0, u - static_cast<double>(i0)};
  };
  const auto [ix, fx] = axis(rel.x, nx_);
  const auto [iy, fy] = axis(rel.y, ny_);
  const auto [iz, fz] = axis(rel.z, nz_);

  double acc = 0.0;
  for (int dz = 0; dz <= 1; ++dz) {
    for (int dy = 0; dy <= 1; ++dy) {
      for (int dx = 0; dx <= 1; ++dx) {
        const double w = (dx ? fx : 1.0 - fx) * (dy ? fy : 1.0 - fy) * (dz ? fz : 1.0 - fz);
        acc += w * node(ix + static_cast<std::size_t>(dx), iy + static_cast<std::size_t>(dy),
                        iz + static_cast<std::size_t>(dz));
      }
    }
  }
  return acc;
}

}  // namespace remgen::radio
