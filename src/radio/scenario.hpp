// Scenario builder: populates the apartment-building model with a realistic
// Wi-Fi AP population matching the statistics the paper observed (73 distinct
// MACs, 49 SSIDs, mean detected RSS around -73 dBm, AP density increasing
// toward the building core at +x / -y).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "geom/floorplan.hpp"
#include "radio/access_point.hpp"
#include "radio/ble.hpp"
#include "radio/environment.hpp"
#include "util/rng.hpp"

namespace remgen::radio {

/// Parameters of the synthetic AP population.
struct ScenarioConfig {
  std::size_t ssid_count = 49;      ///< Distinct networks (households).
  std::size_t mac_count = 73;       ///< Distinct BSS transmitters.
  double primary_channel_prob = 0.8;  ///< Probability an AP sits on ch 1/6/11.
  double tx_power_mean_dbm = 12.0;    ///< EIRP net of enclosure/antenna losses.
  double tx_power_sigma_db = 4.0;
  double core_bias = 3.0;  ///< Strength of the density skew toward +x / -y.
  double south_cluster_fraction = 0.22;  ///< Fraction of APs in the units just
                                         ///< south of the room, one storey up or
                                         ///< down (drives the -y count gradient).
  BlePopulationConfig ble;               ///< BLE advertisers sharing the building.
};

/// Edits the AP population before the environment is frozen (used to model
/// long-term environment changes for REM-staleness studies). Appending APs
/// and editing positions/powers is safe; removing or reordering APs changes
/// the per-AP shadowing streams of everything behind them.
using ApMutator = std::function<void(std::vector<AccessPoint>&)>;

/// A fully built simulation scenario. Owns the floorplan and environment.
class Scenario {
 public:
  /// Builds the paper's demonstration scenario with the given RNG stream.
  /// With the same seed and config, `mutator == nullptr` and a mutator that
  /// only edits existing APs yield environments that differ exactly by the
  /// edits (frozen shadowing fields included).
  static Scenario make_apartment(util::Rng& rng, const ScenarioConfig& scenario_config = {},
                                 const EnvironmentConfig& env_config = {},
                                 const ApMutator& mutator = nullptr);

  /// Builds the office-floor scenario (geom::make_office_model): a few
  /// ceiling-mounted enterprise APs sharing corporate SSIDs on this and the
  /// adjacent floors, plus personal hotspots — structurally different from
  /// the apartment, same toolchain (design requirement ii).
  static Scenario make_office(util::Rng& rng, const EnvironmentConfig& env_config = {});

  [[nodiscard]] const geom::Floorplan& floorplan() const noexcept { return model_->floorplan; }
  [[nodiscard]] const geom::Aabb& scan_volume() const noexcept { return model_->scan_volume; }
  [[nodiscard]] const RadioEnvironment& environment() const noexcept { return *environment_; }
  [[nodiscard]] const BleEnvironment& ble_environment() const noexcept {
    return *ble_environment_;
  }

 private:
  Scenario() = default;

  // The model is heap-allocated so the environment's pointer into the
  // floorplan stays valid when the Scenario itself is moved.
  std::unique_ptr<geom::ApartmentModel> model_;
  std::unique_ptr<RadioEnvironment> environment_;
  std::unique_ptr<BleEnvironment> ble_environment_;
};

/// Generates just the AP population over the given building bounds (exposed
/// separately for tests and custom scenarios).
[[nodiscard]] std::vector<AccessPoint> make_ap_population(const geom::Aabb& building_bounds,
                                                          const ScenarioConfig& config,
                                                          util::Rng& rng);

}  // namespace remgen::radio
