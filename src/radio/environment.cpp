#include "radio/environment.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace remgen::radio {

RadioEnvironment::RadioEnvironment(const geom::Floorplan& floorplan,
                                   std::vector<AccessPoint> access_points,
                                   const geom::Aabb& shadowing_bounds,
                                   const EnvironmentConfig& config, util::Rng& rng)
    : floorplan_(&floorplan),
      aps_(std::move(access_points)),
      config_(config),
      pathloss_(floorplan, config.pathloss_exponent, config.reference_loss_db),
      aps_by_channel_(kNumWifiChannels) {
  shadowing_.reserve(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    REMGEN_EXPECTS(is_valid_wifi_channel(aps_[i].channel));
    REMGEN_EXPECTS(aps_[i].beacon_interval_s > 0.0);
    util::Rng child = rng.fork("shadowing-" + aps_[i].mac.to_string());
    shadowing_.emplace_back(shadowing_bounds, config.shadowing_sigma_db,
                            config.shadowing_decorrelation_m, child);
    aps_by_channel_[static_cast<std::size_t>(aps_[i].channel - 1)].push_back(i);
  }
}

double RadioEnvironment::mean_rss_dbm(std::size_t ap_index, const geom::Vec3& p) const {
  REMGEN_EXPECTS(ap_index < aps_.size());
  const AccessPoint& ap = aps_[ap_index];
  const double distance = ap.position.distance_to(p);
  const double clutter = config_.clutter_db_per_m * std::max(0.0, distance - 1.0);
  return ap.tx_power_dbm - pathloss_.loss_db(ap.position, p) - clutter +
         shadowing_[ap_index].at(p);
}

double RadioEnvironment::sample_rss_dbm(std::size_t ap_index, const geom::Vec3& p,
                                        util::Rng& rng) const {
  return mean_rss_dbm(ap_index, p) + rng.gaussian(0.0, config_.fading_sigma_db);
}

double RadioEnvironment::beacon_decode_probability(double rss_dbm) const {
  const double snr = rss_dbm - config_.noise_floor_dbm;
  const double x = (snr - config_.snr50_db) / config_.snr_slope_db;
  return 1.0 / (1.0 + std::exp(-x));
}

std::vector<Detection> RadioEnvironment::scan(const geom::Vec3& position, double scan_duration_s,
                                              const CrazyradioInterference* interference,
                                              util::Rng& rng) const {
  REMGEN_EXPECTS(scan_duration_s > 0.0);
  const double dwell_s = scan_duration_s / static_cast<double>(kNumWifiChannels);

  std::uint64_t fading_draws = 0;
  std::uint64_t aps_considered = 0;
  std::vector<Detection> detections;
  for (int channel = 1; channel <= kNumWifiChannels; ++channel) {
    const double loss_prob =
        interference != nullptr ? interference->beacon_loss_probability(channel) : 0.0;
    for (const std::size_t ap_index : aps_by_channel_[static_cast<std::size_t>(channel - 1)]) {
      const AccessPoint& ap = aps_[ap_index];
      ++aps_considered;
      const double mean = mean_rss_dbm(ap_index, position);
      // Quick reject: if even a +5-sigma fade cannot decode, skip the AP.
      if (beacon_decode_probability(mean + 5.0 * config_.fading_sigma_db) < 1e-4) continue;

      const double expected_beacons = dwell_s / ap.beacon_interval_s;
      const std::uint32_t beacons = rng.poisson(expected_beacons);
      fading_draws += beacons;
      double best_rss = -1e9;
      bool detected = false;
      for (std::uint32_t b = 0; b < beacons; ++b) {
        const double rss = mean + rng.gaussian(0.0, config_.fading_sigma_db);
        if (!rng.bernoulli(beacon_decode_probability(rss))) continue;
        if (loss_prob > 0.0 && rng.bernoulli(loss_prob)) continue;
        detected = true;
        best_rss = std::max(best_rss, rss);
      }
      if (detected) {
        // Quantise to 0.25 dB; driver-level integer truncation happens later.
        const double quantised = std::round(best_rss * 4.0) / 4.0;
        detections.push_back({ap_index, quantised, channel});
      }
    }
  }
  REMGEN_COUNTER_ADD("radio.scans", 1);
  REMGEN_COUNTER_ADD("radio.aps_considered", aps_considered);
  REMGEN_COUNTER_ADD("radio.fading_draws", fading_draws);
  REMGEN_COUNTER_ADD("radio.samples_generated", detections.size());
  REMGEN_HISTOGRAM_OBSERVE("radio.scan_detections", detections.size(),
                           {1, 2, 4, 8, 16, 32, 64});
  return detections;
}

}  // namespace remgen::radio
