// Wi-Fi access point description used by the propagation environment.
#pragma once

#include <string>

#include "geom/vec3.hpp"
#include "radio/mac_address.hpp"

namespace remgen::radio {

/// One 802.11 BSS transmitter. A physical router advertising several SSIDs
/// appears as several AccessPoints sharing a position (multi-BSSID), and one
/// SSID may appear behind several MACs (mesh/extender deployments) — both
/// occur in the paper's dataset (73 MACs vs 49 SSIDs).
struct AccessPoint {
  MacAddress mac;
  std::string ssid;
  int channel = 1;              ///< 2.4 GHz channel 1-13.
  double tx_power_dbm = 17.0;   ///< EIRP including antenna gain.
  geom::Vec3 position;          ///< Transmit antenna location (m).
  double beacon_interval_s = 0.1024;  ///< Standard 102.4 ms TBTT.
};

}  // namespace remgen::radio
