#include "radio/scenario.hpp"

#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::radio {

namespace {

/// Storey selector: same floor most likely, then adjacent, then two up.
double draw_floor_z(util::Rng& rng) {
  const double u = rng.uniform01();
  if (u < 0.30) return 0.0;
  if (u < 0.60) return 2.6;
  if (u < 0.90) return -2.6;
  return 5.2;
}

/// Draws an AP position from the building-wing mixture. The mixture is what
/// produces the spatial statistics the paper reports: most neighbours live in
/// the east and south wings (building core at +x / -y), a few units share the
/// quieter north/west side, and every wing mixes same-floor and cross-floor
/// units so a substantial AP subpopulation sits in the marginal-detectability
/// band whose detection probability varies across the room.
geom::Vec3 draw_ap_position(const geom::Aabb& bounds, double core_bias, util::Rng& rng) {
  // core_bias shifts weight from the quiet wings to the core wings.
  const double core_weight = core_bias / (core_bias + 1.0);  // 0.75 at default 3.0
  geom::Vec3 p;
  const double u = rng.uniform01();
  if (u < core_weight * 0.55) {
    // East wing: the corridor and units toward +x.
    p = {rng.uniform(8.0, bounds.max.x - 0.5), rng.uniform(-8.0, 5.0), 0.0};
  } else if (u < core_weight) {
    // South wing: the units directly south of the room (straight-north paths
    // into the room cross the thick or thin corridor-wall segment depending
    // on which half of the room receives them).
    p = {rng.uniform(-2.0, 2.5), rng.uniform(bounds.min.y + 0.5, -4.5), 0.0};
  } else if (u < core_weight + (1.0 - core_weight) * 0.5) {
    // Same floor, own and adjacent units.
    p = {rng.uniform(-2.0, 6.0), rng.uniform(-4.5, 6.0), 0.0};
  } else {
    // Quiet north/west side.
    p = {rng.uniform(bounds.min.x + 0.5, 4.0), rng.uniform(3.5, bounds.max.y - 0.5), 0.0};
  }
  p.z = draw_floor_z(rng) + rng.uniform(0.3, 2.1);  // router on furniture/wall
  return p;
}

int draw_channel(double primary_prob, util::Rng& rng) {
  if (rng.bernoulli(primary_prob)) {
    return kPrimaryChannels[rng.index(kPrimaryChannels.size())];
  }
  return static_cast<int>(rng.uniform_int(1, kNumWifiChannels));
}

}  // namespace

std::vector<AccessPoint> make_ap_population(const geom::Aabb& building_bounds,
                                            const ScenarioConfig& config, util::Rng& rng) {
  REMGEN_EXPECTS(config.ssid_count > 0);
  REMGEN_EXPECTS(config.mac_count >= config.ssid_count);

  std::vector<AccessPoint> aps;
  aps.reserve(config.mac_count);

  // Each SSID gets one primary BSS; the remaining MAC budget is spent on
  // extra BSSes (mesh nodes / extenders / guest BSSIDs) for random SSIDs.
  std::vector<std::string> ssids;
  ssids.reserve(config.ssid_count);
  for (std::size_t i = 0; i < config.ssid_count; ++i) {
    ssids.push_back(util::format("home-net-{:03d}", i + 1));
  }

  auto add_bss = [&](const std::string& ssid) {
    AccessPoint ap;
    ap.mac = MacAddress::random(rng);
    ap.ssid = ssid;
    ap.channel = draw_channel(config.primary_channel_prob, rng);
    ap.tx_power_dbm = rng.gaussian(config.tx_power_mean_dbm, config.tx_power_sigma_db);
    if (rng.bernoulli(config.south_cluster_fraction)) {
      // Units just south of the room, one storey up or down: through the slab
      // they sit in the marginal-detectability band, so the room's y
      // coordinate strongly modulates whether their beacons decode.
      const double floor_z = rng.bernoulli(0.5) ? 2.6 : -2.6;
      ap.position = {rng.uniform(-1.0, 2.5), rng.uniform(-4.8, -0.5),
                     floor_z + rng.uniform(0.3, 2.1)};
      ap.tx_power_dbm -= 12.0;  // low-power devices (extenders, IoT hubs) deep inside the unit
    } else {
      ap.position = draw_ap_position(building_bounds, config.core_bias, rng);
    }
    aps.push_back(std::move(ap));
  };

  for (const std::string& ssid : ssids) add_bss(ssid);
  while (aps.size() < config.mac_count) {
    add_bss(ssids[rng.index(ssids.size())]);
  }

  // One of the networks is the apartment's own router: place it inside the
  // unit near the interior wall so the scan volume sees a strong AP.
  aps.front().position = {3.35, 0.45, 1.10};
  aps.front().tx_power_dbm = config.tx_power_mean_dbm + 1.0;

  return aps;
}

Scenario Scenario::make_apartment(util::Rng& rng, const ScenarioConfig& scenario_config,
                                  const EnvironmentConfig& env_config,
                                  const ApMutator& mutator) {
  Scenario s;
  s.model_ = std::make_unique<geom::ApartmentModel>(geom::make_apartment_model());
  std::vector<AccessPoint> aps =
      make_ap_population(s.model_->building_bounds, scenario_config, rng);
  if (mutator) mutator(aps);
  const geom::Aabb shadow_bounds(s.model_->scan_volume.min - geom::Vec3{1.0, 1.0, 1.0},
                                 s.model_->scan_volume.max + geom::Vec3{1.0, 1.0, 1.0});
  util::Rng env_rng = rng.fork("environment");
  s.environment_ = std::make_unique<RadioEnvironment>(s.model_->floorplan, std::move(aps),
                                                      shadow_bounds, env_config, env_rng);

  util::Rng ble_rng = rng.fork("ble");
  std::vector<BleDevice> ble_devices =
      make_ble_population(s.model_->building_bounds, scenario_config.ble, ble_rng);
  s.ble_environment_ = std::make_unique<BleEnvironment>(
      s.model_->floorplan, std::move(ble_devices), shadow_bounds, BleEnvironmentConfig{},
      ble_rng);
  return s;
}

Scenario Scenario::make_office(util::Rng& rng, const EnvironmentConfig& env_config) {
  Scenario s;
  s.model_ = std::make_unique<geom::ApartmentModel>(geom::make_office_model());

  // Enterprise deployment: ceiling APs with shared corporate SSIDs (one SSID,
  // many MACs — the inverse of the apartment's mostly-1:1 mapping), plus the
  // odd personal hotspot and printer.
  std::vector<AccessPoint> aps;
  auto add = [&](const char* ssid, const geom::Vec3& position, double tx, int channel) {
    AccessPoint ap;
    ap.mac = MacAddress::random(rng);
    ap.ssid = ssid;
    ap.channel = channel;
    ap.tx_power_dbm = tx;
    ap.position = position;
    aps.push_back(std::move(ap));
  };
  // This floor: three ceiling APs across the open-plan area (z = 2.9).
  add("corp-wifi", {1.5, 2.0, 2.9}, 15.0, 1);
  add("corp-wifi", {5.0, 3.5, 2.9}, 15.0, 6);
  add("corp-wifi", {8.5, 1.0, 2.9}, 15.0, 11);
  // Guest network piggybacks on the same radios (multi-BSSID).
  add("corp-guest", {1.5, 2.0, 2.9}, 12.0, 1);
  add("corp-guest", {5.0, 3.5, 2.9}, 12.0, 6);
  // Floor above and below: same layout, through the slab.
  for (const double dz : {3.0, -3.0}) {
    add("corp-wifi", {1.5, 2.0, 2.9 + dz}, 15.0, 6);
    add("corp-wifi", {5.0, 3.5, 2.9 + dz}, 15.0, 11);
    add("corp-wifi", {8.5, 1.0, 2.9 + dz}, 15.0, 1);
  }
  // Meeting-room AV units and printers (weak, assorted channels).
  add("boardroom-av", {2.0, 6.4, 1.2}, 6.0, 3);
  add("printer-east", {9.2, 2.0, 0.9}, 4.0, 9);
  // A few personal hotspots at desks.
  for (int i = 0; i < 4; ++i) {
    add(i % 2 == 0 ? "phone-hotspot" : "tablet", 
        {rng.uniform(0.5, 9.5), rng.uniform(-1.0, 4.0), rng.uniform(0.7, 1.2)},
        rng.gaussian(8.0, 2.0), static_cast<int>(rng.uniform_int(1, 13)));
  }

  const geom::Aabb shadow_bounds(s.model_->scan_volume.min - geom::Vec3{1.0, 1.0, 1.0},
                                 s.model_->scan_volume.max + geom::Vec3{1.0, 1.0, 1.0});
  util::Rng env_rng = rng.fork("office-environment");
  s.environment_ = std::make_unique<RadioEnvironment>(s.model_->floorplan, std::move(aps),
                                                      shadow_bounds, env_config, env_rng);

  util::Rng ble_rng = rng.fork("office-ble");
  BlePopulationConfig ble_config;
  ble_config.device_count = 18;  // wearables and peripherals at desks
  std::vector<BleDevice> ble_devices =
      make_ble_population(s.model_->building_bounds, ble_config, ble_rng);
  s.ble_environment_ = std::make_unique<BleEnvironment>(
      s.model_->floorplan, std::move(ble_devices), shadow_bounds, BleEnvironmentConfig{},
      ble_rng);
  return s;
}

}  // namespace remgen::radio
