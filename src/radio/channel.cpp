#include "radio/channel.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace remgen::radio {

double wifi_channel_center_mhz(int channel) {
  REMGEN_EXPECTS(is_valid_wifi_channel(channel));
  return 2412.0 + 5.0 * static_cast<double>(channel - 1);
}

bool is_valid_wifi_channel(int channel) { return channel >= 1 && channel <= kNumWifiChannels; }

double carrier_overlap_fraction(double carrier_mhz, double carrier_bw_mhz, int channel) {
  return carrier_overlap_fraction_mhz(carrier_mhz, carrier_bw_mhz,
                                      wifi_channel_center_mhz(channel),
                                      kWifiChannelBandwidthMhz);
}

double carrier_overlap_fraction_mhz(double carrier_mhz, double carrier_bw_mhz,
                                    double victim_mhz, double victim_bw_mhz) {
  REMGEN_EXPECTS(carrier_bw_mhz > 0.0);
  REMGEN_EXPECTS(victim_bw_mhz > 0.0);
  const double ch_lo = victim_mhz - victim_bw_mhz / 2.0;
  const double ch_hi = victim_mhz + victim_bw_mhz / 2.0;
  const double ca_lo = carrier_mhz - carrier_bw_mhz / 2.0;
  const double ca_hi = carrier_mhz + carrier_bw_mhz / 2.0;
  const double overlap = std::min(ch_hi, ca_hi) - std::max(ch_lo, ca_lo);
  if (overlap <= 0.0) return 0.0;
  return overlap / carrier_bw_mhz;
}

}  // namespace remgen::radio
