// IEEE 802.11 b/g/n 2.4 GHz channel map and spectral-overlap helpers.
#pragma once

#include <array>
#include <cstdint>

namespace remgen::radio {

/// Number of 2.4 GHz Wi-Fi channels modelled (EU band: channels 1-13).
inline constexpr int kNumWifiChannels = 13;

/// Occupied bandwidth of an 802.11b/g channel in MHz (DSSS mask).
inline constexpr double kWifiChannelBandwidthMhz = 22.0;

/// Centre frequency in MHz of Wi-Fi channel `channel` (1-13).
[[nodiscard]] double wifi_channel_center_mhz(int channel);

/// True iff `channel` is a valid 2.4 GHz channel number.
[[nodiscard]] bool is_valid_wifi_channel(int channel);

/// Fraction (0..1) of a narrowband carrier of width `carrier_bw_mhz` centred
/// at `carrier_mhz` that falls inside the occupied band of Wi-Fi `channel`.
[[nodiscard]] double carrier_overlap_fraction(double carrier_mhz, double carrier_bw_mhz,
                                              int channel);

/// Same, against an arbitrary victim band centred at `victim_mhz` with width
/// `victim_bw_mhz` (e.g. a 2 MHz BLE advertising channel).
[[nodiscard]] double carrier_overlap_fraction_mhz(double carrier_mhz, double carrier_bw_mhz,
                                                  double victim_mhz, double victim_bw_mhz);

/// The set of non-overlapping channels commonly used by deployments (1/6/11).
inline constexpr std::array<int, 3> kPrimaryChannels{1, 6, 11};

}  // namespace remgen::radio
