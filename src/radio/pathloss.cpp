#include "radio/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace remgen::radio {

LogDistanceModel::LogDistanceModel(double exponent, double reference_loss_db)
    : exponent_(exponent), reference_loss_db_(reference_loss_db) {
  REMGEN_EXPECTS(exponent >= 1.0);
  REMGEN_EXPECTS(reference_loss_db >= 0.0);
}

double LogDistanceModel::loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const {
  // Clamp below 10 cm: the model is not valid in the reactive near field and
  // the clamp keeps the loss finite when tx == rx.
  const double d = std::max(tx.distance_to(rx), 0.1);
  return reference_loss_db_ + 10.0 * exponent_ * std::log10(d);
}

MultiWallModel::MultiWallModel(const geom::Floorplan& floorplan, double exponent,
                               double reference_loss_db)
    : floorplan_(&floorplan), base_(exponent, reference_loss_db) {}

double MultiWallModel::loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const {
  return base_.loss_db(tx, rx) + wall_loss_db(tx, rx);
}

double MultiWallModel::wall_loss_db(const geom::Vec3& tx, const geom::Vec3& rx) const {
  return floorplan_->total_penetration_loss_db(tx, rx);
}

}  // namespace remgen::radio
