// RadioEnvironment: the simulated RF ground truth.
//
// Combines a floorplan-aware multi-wall path-loss model, a frozen correlated
// shadowing field per access point, and per-measurement small-scale fading
// into (a) a deterministic mean-RSS surface and (b) a stochastic beacon-scan
// process that the ESP8266 scanner model samples from.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/floorplan.hpp"
#include "radio/access_point.hpp"
#include "radio/interference.hpp"
#include "radio/pathloss.hpp"
#include "radio/shadowing.hpp"
#include "util/rng.hpp"

namespace remgen::radio {

/// Tunables of the stochastic propagation/reception process.
struct EnvironmentConfig {
  double pathloss_exponent = 2.0;       ///< Indoor LoS-like exponent; walls add the rest.
  double reference_loss_db = 40.2;      ///< 1 m loss at 2.44 GHz.
  double clutter_db_per_m = 1.4;        ///< Furniture/people clutter loss beyond 1 m
                                        ///< (ITU-style linear in-building term).
  double shadowing_sigma_db = 2.0;      ///< Std-dev of the frozen spatial field.
  double shadowing_decorrelation_m = 1.3;
  double fading_sigma_db = 3.8;         ///< Per-beacon small-scale variation.
  double noise_floor_dbm = -95.0;       ///< Thermal + NF of the scanner.
  double snr50_db = 4.0;                ///< SNR at 50% beacon decode probability.
  double snr_slope_db = 1.5;            ///< Logistic slope of the decode curve.
};

/// One AP detected during a scan.
struct Detection {
  std::size_t ap_index;  ///< Index into RadioEnvironment::access_points().
  double rss_dbm;        ///< Reported (integer-quantised) RSS.
  int channel;           ///< Channel the AP beacons on.
};

/// Immutable-after-construction RF ground truth.
class RadioEnvironment {
 public:
  /// `floorplan` must outlive the environment. `shadowing_bounds` bounds the
  /// region where shadowing is resolved (queries outside are clamped); pass
  /// the scan volume expanded by ~1 m.
  RadioEnvironment(const geom::Floorplan& floorplan, std::vector<AccessPoint> access_points,
                   const geom::Aabb& shadowing_bounds, const EnvironmentConfig& config,
                   util::Rng& rng);

  [[nodiscard]] const std::vector<AccessPoint>& access_points() const noexcept { return aps_; }
  [[nodiscard]] const EnvironmentConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geom::Floorplan& floorplan() const noexcept { return *floorplan_; }

  /// Deterministic mean RSS of AP `ap_index` at point `p` in dBm
  /// (tx power - path loss + frozen shadowing). This is the quantity the REM
  /// aims to reconstruct.
  [[nodiscard]] double mean_rss_dbm(std::size_t ap_index, const geom::Vec3& p) const;

  /// One stochastic RSS observation (mean + small-scale fading), unquantised.
  [[nodiscard]] double sample_rss_dbm(std::size_t ap_index, const geom::Vec3& p,
                                      util::Rng& rng) const;

  /// Probability that a single beacon received at `rss_dbm` decodes, given
  /// the configured noise floor and decode curve (no interference).
  [[nodiscard]] double beacon_decode_probability(double rss_dbm) const;

  /// Simulates one passive scan sweep: the receiver dwells
  /// `scan_duration_s / 13` on each channel and reports every AP from which
  /// at least one beacon decoded. `interference` may be null (no Crazyradio).
  /// The reported RSS is the strongest decoded beacon, quantised to 0.25 dB
  /// (ESP8266-style integer-ish reporting is applied by the scanner driver).
  [[nodiscard]] std::vector<Detection> scan(const geom::Vec3& position, double scan_duration_s,
                                            const CrazyradioInterference* interference,
                                            util::Rng& rng) const;

 private:
  const geom::Floorplan* floorplan_;
  std::vector<AccessPoint> aps_;
  EnvironmentConfig config_;
  MultiWallModel pathloss_;
  std::vector<ShadowingField> shadowing_;  ///< One frozen field per AP.
  std::vector<std::vector<std::size_t>> aps_by_channel_;  ///< [channel-1] -> AP indices.
};

}  // namespace remgen::radio
