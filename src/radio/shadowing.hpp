// Spatially correlated log-normal shadowing (Gudmundson-style).
//
// Real indoor RSS fields deviate from the deterministic path-loss surface by
// a slowly varying "shadowing" component caused by furniture, people and
// multipath clusters. We model it per transmitter as a Gaussian random field
// with exponential spatial correlation, realised by trilinear interpolation
// of i.i.d. Gaussians on a coarse lattice whose pitch equals the decorrelation
// distance. The field is frozen at construction: repeated queries at the same
// location return the same value, which is exactly the property the REM
// learning task depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace remgen::radio {

/// Frozen correlated Gaussian field over a bounded volume.
class ShadowingField {
 public:
  /// Builds a field over `bounds` with standard deviation `sigma_db` (>= 0)
  /// and decorrelation distance `decorrelation_m` (> 0).
  ShadowingField(const geom::Aabb& bounds, double sigma_db, double decorrelation_m,
                 util::Rng& rng);

  /// Shadowing value in dB at a point (points outside bounds are clamped).
  [[nodiscard]] double at(const geom::Vec3& p) const;

  [[nodiscard]] double sigma_db() const noexcept { return sigma_db_; }
  [[nodiscard]] double decorrelation_m() const noexcept { return decorrelation_m_; }

 private:
  geom::Aabb bounds_;
  double sigma_db_;
  double decorrelation_m_;
  std::size_t nx_, ny_, nz_;  // lattice node counts (>= 2 per axis)
  std::vector<double> nodes_; // i.i.d. N(0, sigma^2) at lattice nodes

  [[nodiscard]] double node(std::size_t ix, std::size_t iy, std::size_t iz) const;
};

}  // namespace remgen::radio
