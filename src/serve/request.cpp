#include "serve/request.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace remgen::serve {

namespace {

[[nodiscard]] double finite_number(const obs::Json& node, const char* field) {
  const double v = node.as_double();
  if (!std::isfinite(v)) {
    throw std::runtime_error(util::format("request: '{}' must be finite", field));
  }
  return v;
}

[[nodiscard]] double finite_field(const obs::Json& object, const char* field) {
  if (!object.contains(field)) {
    throw std::runtime_error(util::format("request: missing '{}'", field));
  }
  return finite_number(object.at(field), field);
}

// Ids and list lengths must be exact integers on the wire. A double-typed
// token (fractional, exponent form, or beyond int64 range) is rejected
// instead of silently truncated: an id round-tripped through double would
// corrupt above 2^53, and `top: 2.9` flooring to 2 hides a client bug.
[[nodiscard]] std::int64_t integer_field(const obs::Json& node, const char* field) {
  if (!node.is_int()) {
    throw std::runtime_error(util::format("request: '{}' must be an integer", field));
  }
  return node.as_int64();
}

[[nodiscard]] geom::Vec3 parse_point_array(const obs::Json& node) {
  const obs::Json::Array& xyz = node.as_array();
  if (xyz.size() != 3) {
    throw std::runtime_error(
        util::format("request: point needs 3 coordinates, got {}", xyz.size()));
  }
  return {finite_number(xyz[0], "points[][0]"), finite_number(xyz[1], "points[][1]"),
          finite_number(xyz[2], "points[][2]")};
}

}  // namespace

Request parse_request(const std::string& line) { return parse_request_doc(obs::Json::parse(line)); }

Request parse_request_doc(const obs::Json& doc) {
  if (!doc.is_object()) throw std::runtime_error("request: line is not a JSON object");

  Request req;
  if (!doc.contains("id")) throw std::runtime_error("request: missing 'id'");
  req.id = integer_field(doc.at("id"), "id");
  // Negative ids are reserved: replay/serving uses id -1 for responses to
  // lines whose own id could not be parsed, and accepting client-sent
  // negatives would let a real response collide with that sentinel.
  if (req.id < 0) throw std::runtime_error("request: 'id' must be >= 0");

  const std::string type = doc.contains("type") ? doc.at("type").as_string() : "point";
  if (type == "point") {
    req.type = RequestType::Point;
  } else if (type == "batch") {
    req.type = RequestType::Batch;
  } else if (type == "volume") {
    req.type = RequestType::Volume;
  } else {
    throw std::runtime_error(util::format("request: unknown type '{}'", type));
  }

  if (doc.contains("mac")) {
    const std::string& text = doc.at("mac").as_string();
    const std::optional<radio::MacAddress> mac = radio::MacAddress::parse(text);
    if (!mac.has_value()) {
      throw std::runtime_error(util::format("request: malformed mac '{}'", text));
    }
    req.mac = *mac;
  }
  if (doc.contains("top")) {
    const std::int64_t top = integer_field(doc.at("top"), "top");
    if (top < 1) throw std::runtime_error("request: 'top' must be >= 1");
    req.top = static_cast<std::size_t>(top);
  }
  if (doc.contains("map")) req.map = doc.at("map").as_string();

  switch (req.type) {
    case RequestType::Point:
      req.points.push_back(
          {finite_field(doc, "x"), finite_field(doc, "y"), finite_field(doc, "z")});
      break;
    case RequestType::Batch: {
      if (!doc.contains("points")) throw std::runtime_error("request: batch missing 'points'");
      const obs::Json::Array& points = doc.at("points").as_array();
      if (points.empty()) throw std::runtime_error("request: batch 'points' is empty");
      req.points.reserve(points.size());
      for (const obs::Json& p : points) req.points.push_back(parse_point_array(p));
      break;
    }
    case RequestType::Volume:
      req.z_lo = finite_field(doc, "z_lo");
      req.z_hi = finite_field(doc, "z_hi");
      if (req.z_lo > req.z_hi) throw std::runtime_error("request: z_lo > z_hi");
      if (doc.contains("threshold_dbm")) {
        req.threshold_dbm = finite_number(doc.at("threshold_dbm"), "threshold_dbm");
      }
      break;
  }
  return req;
}

std::int64_t salvage_request_id(const std::string& line) noexcept {
  try {
    const obs::Json doc = obs::Json::parse(line);
    if (doc.is_object() && doc.contains("id") && doc.at("id").is_int() &&
        doc.at("id").as_int64() >= 0) {
      return doc.at("id").as_int64();
    }
  } catch (const std::exception&) {
  }
  return -1;
}

std::string Response::to_jsonl() const {
  obs::Json::Object object =
      body.is_object() ? body.as_object() : obs::Json::Object{{"result", body}};
  object["id"] = obs::Json(id);  // Exact int64: ids above 2^53 stay intact.
  object["ok"] = obs::Json(ok);
  if (!ok) object["error"] = obs::Json(error);
  return obs::Json(std::move(object)).dump();
}

}  // namespace remgen::serve
