#include "serve/request.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace remgen::serve {

namespace {

[[nodiscard]] double finite_number(const obs::Json& node, const char* field) {
  const double v = node.as_double();
  if (!std::isfinite(v)) {
    throw std::runtime_error(util::format("request: '{}' must be finite", field));
  }
  return v;
}

[[nodiscard]] double finite_field(const obs::Json& object, const char* field) {
  if (!object.contains(field)) {
    throw std::runtime_error(util::format("request: missing '{}'", field));
  }
  return finite_number(object.at(field), field);
}

[[nodiscard]] geom::Vec3 parse_point_array(const obs::Json& node) {
  const obs::Json::Array& xyz = node.as_array();
  if (xyz.size() != 3) {
    throw std::runtime_error(
        util::format("request: point needs 3 coordinates, got {}", xyz.size()));
  }
  return {finite_number(xyz[0], "points[][0]"), finite_number(xyz[1], "points[][1]"),
          finite_number(xyz[2], "points[][2]")};
}

}  // namespace

Request parse_request(const std::string& line) {
  const obs::Json doc = obs::Json::parse(line);
  if (!doc.is_object()) throw std::runtime_error("request: line is not a JSON object");

  Request req;
  if (!doc.contains("id")) throw std::runtime_error("request: missing 'id'");
  req.id = static_cast<std::int64_t>(finite_number(doc.at("id"), "id"));

  const std::string type = doc.contains("type") ? doc.at("type").as_string() : "point";
  if (type == "point") {
    req.type = RequestType::Point;
  } else if (type == "batch") {
    req.type = RequestType::Batch;
  } else if (type == "volume") {
    req.type = RequestType::Volume;
  } else {
    throw std::runtime_error(util::format("request: unknown type '{}'", type));
  }

  if (doc.contains("mac")) {
    const std::string& text = doc.at("mac").as_string();
    const std::optional<radio::MacAddress> mac = radio::MacAddress::parse(text);
    if (!mac.has_value()) {
      throw std::runtime_error(util::format("request: malformed mac '{}'", text));
    }
    req.mac = *mac;
  }
  if (doc.contains("top")) {
    const double top = finite_number(doc.at("top"), "top");
    if (top < 1.0) throw std::runtime_error("request: 'top' must be >= 1");
    req.top = static_cast<std::size_t>(top);
  }

  switch (req.type) {
    case RequestType::Point:
      req.points.push_back(
          {finite_field(doc, "x"), finite_field(doc, "y"), finite_field(doc, "z")});
      break;
    case RequestType::Batch: {
      if (!doc.contains("points")) throw std::runtime_error("request: batch missing 'points'");
      const obs::Json::Array& points = doc.at("points").as_array();
      if (points.empty()) throw std::runtime_error("request: batch 'points' is empty");
      req.points.reserve(points.size());
      for (const obs::Json& p : points) req.points.push_back(parse_point_array(p));
      break;
    }
    case RequestType::Volume:
      req.z_lo = finite_field(doc, "z_lo");
      req.z_hi = finite_field(doc, "z_hi");
      if (req.z_lo > req.z_hi) throw std::runtime_error("request: z_lo > z_hi");
      if (doc.contains("threshold_dbm")) {
        req.threshold_dbm = finite_number(doc.at("threshold_dbm"), "threshold_dbm");
      }
      break;
  }
  return req;
}

std::string Response::to_jsonl() const {
  obs::Json::Object object =
      body.is_object() ? body.as_object() : obs::Json::Object{{"result", body}};
  object["id"] = obs::Json(static_cast<double>(id));
  object["ok"] = obs::Json(ok);
  if (!ok) object["error"] = obs::Json(error);
  return obs::Json(std::move(object)).dump();
}

}  // namespace remgen::serve
