#include "serve/cache.hpp"

#include <bit>

namespace remgen::serve {

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_entries_(capacity_bytes / kBytesPerEntry),
      per_shard_capacity_(capacity_entries_ / kShards),
      shards_(kShards) {}

std::size_t ResultCache::KeyHash::operator()(const Key& k) const noexcept {
  // SplitMix64-style mix over the four words.
  std::uint64_t h = k.mac;
  for (const std::uint64_t w : {k.x, k.y, k.z}) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return static_cast<std::size_t>(h);
}

ResultCache::Key ResultCache::make_key(const radio::MacAddress& mac, const geom::Vec3& point) {
  return {mac.to_u64(), std::bit_cast<std::uint64_t>(point.x),
          std::bit_cast<std::uint64_t>(point.y), std::bit_cast<std::uint64_t>(point.z)};
}

ResultCache::Shard& ResultCache::shard_for(const Key& key) {
  // Shard by MAC only: one transmitter's working set stays in one shard, and
  // workers serving different MACs take different mutexes.
  return shards_[static_cast<std::size_t>(key.mac * 0x9e3779b97f4a7c15ULL >> 32) % kShards];
}

std::optional<double> ResultCache::get(const radio::MacAddress& mac, const geom::Vec3& point) {
  if (per_shard_capacity_ == 0) return std::nullopt;
  const Key key = make_key(mac, point);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  return it->second->second;
}

void ResultCache::put(const radio::MacAddress& mac, const geom::Vec3& point, double rss_dbm) {
  if (per_shard_capacity_ == 0) return;
  const Key key = make_key(mac, point);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = rss_dbm;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  shard.order.emplace_front(key, rss_dbm);
  shard.index[key] = shard.order.begin();
  while (shard.order.size() > per_shard_capacity_) {
    shard.index.erase(shard.order.back().first);
    shard.order.pop_back();
  }
}

std::uint64_t ResultCache::hits() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.hits;
  }
  return total;
}

std::uint64_t ResultCache::misses() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.misses;
  }
  return total;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.order.size();
  }
  return total;
}

}  // namespace remgen::serve
