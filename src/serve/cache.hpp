// Sharded LRU cache of per-(MAC, point) model predictions.
//
// Point and batch queries repeatedly hit the same (transmitter, coordinate)
// pairs — replayed request logs, fleet dashboards polling fixed probe points,
// best-AP scans iterating every MAC at one location. The cache keys on the
// MAC's 48-bit value plus the exact IEEE-754 bit patterns of the coordinates
// (so hits require bit-identical points and cached values stay bit-identical
// to fresh predictions), and shards by MAC hash so concurrent workers
// serving different transmitters rarely contend on the same mutex.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/vec3.hpp"
#include "radio/mac_address.hpp"

namespace remgen::serve {

/// Thread-safe sharded LRU map from (MAC, point bits) to predicted RSS.
class ResultCache {
 public:
  /// Capacity is given in bytes and converted with a conservative
  /// ~`kBytesPerEntry` per-entry estimate (key + value + list/map nodes).
  /// A zero budget disables caching (every lookup misses).
  explicit ResultCache(std::size_t capacity_bytes);

  /// Returns the cached prediction and refreshes its recency, or nullopt.
  [[nodiscard]] std::optional<double> get(const radio::MacAddress& mac, const geom::Vec3& point);

  /// Inserts or refreshes an entry, evicting the shard's least-recently-used
  /// entries over capacity.
  void put(const radio::MacAddress& mac, const geom::Vec3& point, double rss_dbm);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity_entries() const noexcept { return capacity_entries_; }

  static constexpr std::size_t kBytesPerEntry = 128;

 private:
  struct Key {
    std::uint64_t mac = 0;
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint64_t z = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// Most-recent first; pairs of (key, value).
    std::list<std::pair<Key, double>> order;
    std::unordered_map<Key, std::list<std::pair<Key, double>>::iterator, KeyHash> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  [[nodiscard]] static Key make_key(const radio::MacAddress& mac, const geom::Vec3& point);
  [[nodiscard]] Shard& shard_for(const Key& key);

  static constexpr std::size_t kShards = 16;
  std::size_t capacity_entries_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace remgen::serve
