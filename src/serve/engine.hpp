// Query engine over a loaded snapshot: the online half of the REM pipeline.
//
// The engine answers point, batch, and volume queries against the trained
// model and baked REM a snapshot carries, with a sharded LRU cache in front
// of the model. Requests are executed concurrently on the shared
// exec::ThreadPool, but responses are deterministic: input lines are parsed
// sequentially, executed into index-addressed slots, then emitted sorted by
// request id (ties broken by input order) — so the response stream is
// byte-identical at any --threads value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <vector>

#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "store/snapshot.hpp"
#include "util/stats.hpp"

namespace remgen::serve {

/// Aggregate statistics of one replay_jsonl() run.
struct ReplayStats {
  std::size_t requests = 0;
  std::size_t errors = 0;  ///< Malformed lines + failed executions.
  /// Cache activity of THIS run only (deltas over the engine's cumulative
  /// counters), so back-to-back replays on one engine don't double-count.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  util::Percentiles latency_us;  ///< Per-request execution latency.
};

/// Serves queries against one immutable snapshot. Thread-safe: execute() may
/// be called concurrently; the snapshot is never mutated after construction.
class QueryEngine {
 public:
  /// Takes ownership of the snapshot. The model must be present; the REM is
  /// optional (volume queries then fail per-request, not at startup).
  QueryEngine(store::Snapshot snapshot, std::size_t cache_bytes);

  /// Executes one request. Errors (unknown MAC required, missing REM, ...)
  /// come back as ok=false responses, never exceptions.
  [[nodiscard]] Response execute(const Request& request) const;

  /// Executes a batch concurrently and returns responses sorted by request
  /// id (stable in input order) — deterministic at any thread count.
  [[nodiscard]] std::vector<Response> execute_all(const std::vector<Request>& requests) const;

  /// Executes a batch concurrently and returns responses in INPUT order
  /// (the network server's per-connection delivery order), coalescing
  /// single-point queries that name the same known MAC into one batched
  /// model call. Every response is byte-identical to what execute() would
  /// produce for the same request, at any thread count.
  [[nodiscard]] std::vector<Response> execute_coalesced(
      const std::vector<Request>& requests) const;

  /// Drains JSONL requests from `in`, writes one JSONL response per request
  /// to `out` (ordered by id), and returns run statistics. Malformed lines
  /// produce ok=false responses with id -1 when the id itself is unparseable.
  ReplayStats replay_jsonl(std::istream& in, std::ostream& out) const;

  /// MACs known to the engine (sorted), from the snapshot's dataset.
  [[nodiscard]] const std::vector<radio::MacAddress>& macs() const noexcept { return macs_; }
  [[nodiscard]] const store::Snapshot& snapshot() const noexcept { return snapshot_; }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }

 private:
  /// Model prediction for one (MAC, point), through the cache.
  [[nodiscard]] double predict(const radio::MacAddress& mac, const geom::Vec3& point) const;

  /// Batched model predictions for one MAC at many points, through the
  /// cache: hits are answered from the cache, and all misses go to the model
  /// in ONE predict_batch call instead of one predict per point.
  void predict_many(const radio::MacAddress& mac, std::span<const geom::Vec3> points,
                    std::span<double> out) const;
  [[nodiscard]] Response execute_point(const Request& request) const;
  [[nodiscard]] Response execute_batch(const Request& request) const;
  [[nodiscard]] Response execute_volume(const Request& request) const;

  store::Snapshot snapshot_;
  std::vector<radio::MacAddress> macs_;
  std::map<radio::MacAddress, int> channel_of_;
  mutable ResultCache cache_;
};

}  // namespace remgen::serve
