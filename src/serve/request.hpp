// Serve-protocol request/response types and their JSONL wire format.
//
// A request is one JSON object per line:
//   {"id":1,"type":"point","x":1.0,"y":2.0,"z":1.5,"mac":"aa:bb:cc:dd:ee:ff"}
//   {"id":2,"type":"point","x":1.0,"y":2.0,"z":1.5,"top":3}       (best-AP)
//   {"id":3,"type":"batch","mac":"...","points":[[x,y,z],...]}
//   {"id":4,"type":"volume","z_lo":0.5,"z_hi":2.0,"threshold_dbm":-80}
// Responses mirror the id and carry either the result body or an error:
//   {"id":1,"ok":true,...}   {"id":5,"ok":false,"error":"..."}
// Serialisation goes through obs::Json (sorted keys, deterministic number
// formatting), so identical results are byte-identical lines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "obs/json.hpp"
#include "radio/mac_address.hpp"

namespace remgen::serve {

/// Kinds of query the engine answers.
enum class RequestType { Point, Batch, Volume };

/// One parsed request line.
struct Request {
  std::int64_t id = 0;                   ///< Non-negative; exact int64 on the wire.
  RequestType type = RequestType::Point;
  std::optional<radio::MacAddress> mac;  ///< Absent on point queries = best-AP.
  std::optional<std::string> map;        ///< Named snapshot (net server); engine ignores it.
  std::vector<geom::Vec3> points;        ///< One for Point, many for Batch.
  std::size_t top = 5;                   ///< Best-AP list length.
  double z_lo = 0.0;                     ///< Volume: z-slab lower bound.
  double z_hi = 0.0;                     ///< Volume: z-slab upper bound.
  double threshold_dbm = -80.0;          ///< Volume: coverage threshold.
};

/// One response line. `body` holds the result object's members; id/ok/error
/// are merged in by to_jsonl().
struct Response {
  std::int64_t id = 0;
  bool ok = true;
  std::string error;
  obs::Json body = obs::Json(obs::Json::Object{});

  /// The compact single-line JSON form (no trailing newline).
  [[nodiscard]] std::string to_jsonl() const;
};

/// Parses one JSONL request line. Throws std::runtime_error on malformed
/// JSON, unknown type, missing fields, non-finite coordinates, a bad MAC, or
/// a non-integer / negative id or 'top' (ids are exact int64 on the wire —
/// never round-tripped through double — and negatives are reserved for the
/// unparseable-id sentinel).
[[nodiscard]] Request parse_request(const std::string& line);

/// Same, over an already-parsed document — callers that must inspect the
/// line first (the network server routes admin types before dispatch) avoid
/// parsing the JSON twice. (Distinctly named: obs::Json converts implicitly
/// from string, so an overload would be ambiguous for literals.)
[[nodiscard]] Request parse_request_doc(const obs::Json& doc);

/// Best-effort id recovery from a line parse_request rejected: returns the
/// line's 'id' when it is valid JSON carrying an exact non-negative integer
/// id, else -1 — the sentinel error responses use when no id is usable.
/// (Negative ids are rejected at parse time, so the sentinel cannot collide
/// with a legitimate response id.)
[[nodiscard]] std::int64_t salvage_request_id(const std::string& line) noexcept;

}  // namespace remgen::serve
