#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/fmt.hpp"

namespace remgen::serve {

QueryEngine::QueryEngine(store::Snapshot snapshot, std::size_t cache_bytes)
    : snapshot_(std::move(snapshot)), cache_(cache_bytes) {
  if (snapshot_.model == nullptr) {
    throw std::runtime_error("serve: snapshot carries no model");
  }
  // Channel context per MAC, as `remgen query` derives it: the MAC's latest
  // sample wins. Queries must see the same Sample shape the CLI builds, or
  // encoders with channel one-hots would diverge from in-process predictions.
  for (const data::Sample& s : snapshot_.dataset.samples()) channel_of_[s.mac] = s.channel;
  macs_.reserve(channel_of_.size());
  for (const auto& [mac, channel] : channel_of_) macs_.push_back(mac);
}

double QueryEngine::predict(const radio::MacAddress& mac, const geom::Vec3& point) const {
  if (const std::optional<double> cached = cache_.get(mac, point); cached.has_value()) {
    return *cached;
  }
  data::Sample query;
  query.mac = mac;
  const auto it = channel_of_.find(mac);
  query.channel = it == channel_of_.end() ? 0 : it->second;
  query.position = point;
  const double rss = snapshot_.model->predict(query);
  cache_.put(mac, point, rss);
  return rss;
}

void QueryEngine::predict_many(const radio::MacAddress& mac, std::span<const geom::Vec3> points,
                               std::span<double> out) const {
  // Cache pass first; every miss is collected and answered by one batched
  // model call. Values are identical to per-point predict(): the model's
  // batched kernel is bit-identical to its scalar path, and duplicate points
  // within one batch produce duplicate (equal) predictions.
  thread_local std::vector<std::size_t> miss_index;
  thread_local std::vector<data::Sample> miss_queries;
  thread_local std::vector<double> miss_values;
  miss_index.clear();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (const std::optional<double> cached = cache_.get(mac, points[i]); cached.has_value()) {
      out[i] = *cached;
    } else {
      miss_index.push_back(i);
    }
  }
  if (miss_index.empty()) return;
  const auto it = channel_of_.find(mac);
  const int channel = it == channel_of_.end() ? 0 : it->second;
  miss_queries.resize(miss_index.size());
  miss_values.resize(miss_index.size());
  for (std::size_t j = 0; j < miss_index.size(); ++j) {
    data::Sample& q = miss_queries[j];
    q.mac = mac;
    q.channel = channel;
    q.position = points[miss_index[j]];
  }
  snapshot_.model->predict_batch(miss_queries, miss_values);
  for (std::size_t j = 0; j < miss_index.size(); ++j) {
    cache_.put(mac, points[miss_index[j]], miss_values[j]);
    out[miss_index[j]] = miss_values[j];
  }
}

Response QueryEngine::execute_point(const Request& request) const {
  Response response;
  response.id = request.id;
  const geom::Vec3& point = request.points.front();
  obs::Json::Object body;
  if (request.mac.has_value()) {
    if (channel_of_.find(*request.mac) == channel_of_.end()) {
      throw std::runtime_error(
          util::format("unknown mac '{}'", request.mac->to_string()));
    }
    body["mac"] = obs::Json(request.mac->to_string());
    body["rss_dbm"] = obs::Json(predict(*request.mac, point));
  } else {
    // Best-AP: every known transmitter evaluated at the point, strongest
    // first; ties broken by MAC so the ordering is deterministic. Cache
    // misses across the whole MAC set are answered with ONE batched model
    // call (macs_ is sorted, so per-MAC estimators see one run per MAC).
    std::vector<std::pair<double, radio::MacAddress>> ranked;
    ranked.reserve(macs_.size());
    thread_local std::vector<std::size_t> miss_index;
    thread_local std::vector<data::Sample> miss_queries;
    thread_local std::vector<double> miss_values;
    miss_index.clear();
    miss_queries.clear();
    for (std::size_t i = 0; i < macs_.size(); ++i) {
      const radio::MacAddress& mac = macs_[i];
      const std::optional<double> cached = cache_.get(mac, point);
      ranked.emplace_back(cached.value_or(0.0), mac);
      if (!cached.has_value()) {
        miss_index.push_back(i);
        data::Sample q;
        q.mac = mac;
        q.channel = channel_of_.at(mac);
        q.position = point;
        miss_queries.push_back(std::move(q));
      }
    }
    if (!miss_index.empty()) {
      miss_values.resize(miss_queries.size());
      snapshot_.model->predict_batch(miss_queries, miss_values);
      for (std::size_t j = 0; j < miss_index.size(); ++j) {
        const radio::MacAddress& mac = macs_[miss_index[j]];
        cache_.put(mac, point, miss_values[j]);
        ranked[miss_index[j]].first = miss_values[j];
      }
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    obs::Json::Array best;
    const std::size_t n = std::min(request.top, ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      best.push_back(obs::Json(obs::Json::Object{
          {"mac", obs::Json(ranked[i].second.to_string())},
          {"rss_dbm", obs::Json(ranked[i].first)},
      }));
    }
    body["best"] = obs::Json(std::move(best));
  }
  response.body = obs::Json(std::move(body));
  return response;
}

Response QueryEngine::execute_batch(const Request& request) const {
  if (!request.mac.has_value()) {
    throw std::runtime_error("batch queries need a 'mac'");
  }
  if (channel_of_.find(*request.mac) == channel_of_.end()) {
    throw std::runtime_error(util::format("unknown mac '{}'", request.mac->to_string()));
  }
  REMGEN_HISTOGRAM_OBSERVE("serve.batch_points", request.points.size(),
                           {1, 8, 64, 512, 4096});
  Response response;
  response.id = request.id;
  // One cache pass + one batched model call for all the batch's misses.
  thread_local std::vector<double> batch_values;
  batch_values.resize(request.points.size());
  predict_many(*request.mac, request.points, batch_values);
  obs::Json::Array values;
  values.reserve(request.points.size());
  for (const double v : batch_values) values.push_back(obs::Json(v));
  obs::Json::Object body;
  body["mac"] = obs::Json(request.mac->to_string());
  body["rss_dbm"] = obs::Json(std::move(values));
  response.body = obs::Json(std::move(body));
  return response;
}

Response QueryEngine::execute_volume(const Request& request) const {
  if (!snapshot_.rem.has_value()) {
    throw std::runtime_error("volume queries need a snapshot with a baked REM");
  }
  const core::RadioEnvironmentMap& rem = *snapshot_.rem;
  const geom::GridGeometry& g = rem.geometry();

  std::size_t voxels = 0;
  std::size_t covered = 0;
  double rss_sum = 0.0;
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    const double zc = g.voxel_center({0, 0, iz}).z;
    if (zc < request.z_lo || zc > request.z_hi) continue;
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        double best = -std::numeric_limits<double>::infinity();
        for (const radio::MacAddress& mac : rem.macs()) {
          best = std::max(best, rem.cell(mac, {ix, iy, iz}).rss_dbm);
        }
        ++voxels;
        rss_sum += best;
        if (best >= request.threshold_dbm) ++covered;
      }
    }
  }

  Response response;
  response.id = request.id;
  obs::Json::Object body;
  body["voxels"] = obs::Json(static_cast<double>(voxels));
  body["covered"] = obs::Json(static_cast<double>(covered));
  body["dark"] = obs::Json(static_cast<double>(voxels - covered));
  body["threshold_dbm"] = obs::Json(request.threshold_dbm);
  if (voxels > 0) {
    body["coverage"] = obs::Json(static_cast<double>(covered) / static_cast<double>(voxels));
    body["mean_best_rss_dbm"] = obs::Json(rss_sum / static_cast<double>(voxels));
  }
  response.body = obs::Json(std::move(body));
  return response;
}

Response QueryEngine::execute(const Request& request) const {
  REMGEN_PROFILE_PHASE("serve.execute");
  REMGEN_COUNTER_ADD("serve.queries", 1);
  try {
    switch (request.type) {
      case RequestType::Point: return execute_point(request);
      case RequestType::Batch: return execute_batch(request);
      case RequestType::Volume: return execute_volume(request);
    }
    throw std::runtime_error("unreachable request type");
  } catch (const std::exception& e) {
    REMGEN_COUNTER_ADD("serve.errors", 1);
    Response response;
    response.id = request.id;
    response.ok = false;
    response.error = e.what();
    return response;
  }
}

std::vector<Response> QueryEngine::execute_coalesced(const std::vector<Request>& requests) const {
  REMGEN_SPAN("serve.execute_coalesced");
  REMGEN_PROFILE_PHASE("serve.execute_coalesced");
  // Work units: single-point queries naming a known MAC are grouped per MAC
  // and answered by ONE predict_many call (cache misses across the whole
  // group become one predict_batch); everything else — best-AP, batch,
  // volume, unknown MAC — executes individually. predict_many is bit-
  // identical to per-point predict(), so every response matches what
  // execute() would have produced, byte for byte.
  struct Unit {
    std::optional<radio::MacAddress> mac;  // Set => coalesced point group.
    std::vector<std::size_t> indices;      // Request indices in input order.
  };
  std::vector<Unit> units;
  std::map<radio::MacAddress, std::size_t> group_of;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.type == RequestType::Point && r.mac.has_value() &&
        channel_of_.find(*r.mac) != channel_of_.end()) {
      const auto [it, inserted] = group_of.try_emplace(*r.mac, units.size());
      if (inserted) units.push_back(Unit{*r.mac, {}});
      units[it->second].indices.push_back(i);
    } else {
      units.push_back(Unit{std::nullopt, {i}});
    }
  }

  std::vector<Response> responses(requests.size());
  const auto run_unit = [&](std::size_t u) {
    const Unit& unit = units[u];
    if (!unit.mac.has_value()) {
      const std::size_t i = unit.indices.front();
      responses[i] = execute(requests[i]);
      return;
    }
    REMGEN_COUNTER_ADD("serve.queries", static_cast<std::int64_t>(unit.indices.size()));
    REMGEN_HISTOGRAM_OBSERVE("serve.coalesced_points", unit.indices.size(), {1, 8, 64, 512, 4096});
    thread_local std::vector<geom::Vec3> unit_points;
    thread_local std::vector<double> unit_values;
    unit_points.clear();
    for (const std::size_t i : unit.indices) unit_points.push_back(requests[i].points.front());
    unit_values.resize(unit_points.size());
    predict_many(*unit.mac, unit_points, unit_values);
    for (std::size_t j = 0; j < unit.indices.size(); ++j) {
      const std::size_t i = unit.indices[j];
      Response& response = responses[i];
      response.id = requests[i].id;
      obs::Json::Object body;
      body["mac"] = obs::Json(unit.mac->to_string());
      body["rss_dbm"] = obs::Json(unit_values[j]);
      response.body = obs::Json(std::move(body));
    }
  };
  // Each unit writes only to its own requests' index-addressed slots, so the
  // schedule never shows in the output.
  exec::parallel_for(units.size(), run_unit,
                     exec::chunk_for_cost(units.size(), /*est_item_us=*/100.0),
                     "serve.execute_coalesced");
  return responses;
}

std::vector<Response> QueryEngine::execute_all(const std::vector<Request>& requests) const {
  REMGEN_SPAN("serve.execute_all");
  REMGEN_PROFILE_PHASE("serve.execute_all");
  // Request execution costs tens of microseconds (cache hit) to a few
  // hundred (model misses) — the cost heuristic picks small chunks.
  std::vector<Response> responses = exec::parallel_map(
      requests.size(), [&](std::size_t i) { return execute(requests[i]); },
      exec::chunk_for_cost(requests.size(), /*est_item_us=*/100.0), "serve.execute_all");
  std::stable_sort(responses.begin(), responses.end(),
                   [](const Response& a, const Response& b) { return a.id < b.id; });
  return responses;
}

ReplayStats QueryEngine::replay_jsonl(std::istream& in, std::ostream& out) const {
  REMGEN_SPAN("serve.replay");
  REMGEN_PROFILE_PHASE("serve.replay");
  const auto start = std::chrono::steady_clock::now();
  // Snapshot the cache counters: ReplayStats reports THIS run's hits and
  // misses. The counters themselves are cumulative over the engine's
  // lifetime, so a second replay on the same engine (a long-running server's
  // steady state) must subtract the baseline instead of double-counting.
  const std::uint64_t cache_hits_at_entry = cache_.hits();
  const std::uint64_t cache_misses_at_entry = cache_.misses();

  // Parse sequentially: line order defines the deterministic tie-break for
  // equal request ids.
  std::vector<Response> slots;
  std::vector<std::pair<std::size_t, Request>> valid;  // (slot index, request)
  std::string line;
  std::size_t errors = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      Request request = parse_request(line);
      valid.emplace_back(slots.size(), std::move(request));
      slots.emplace_back();  // Filled after the parallel phase.
    } catch (const std::exception& e) {
      Response response;
      response.id = -1;
      // Salvage the id when the line is valid JSON with a usable id but an
      // invalid request otherwise, so the client can correlate the error.
      // Only exact non-negative integers qualify: parse_request rejects
      // negative ids, so -1 stays an unambiguous "id unparseable" sentinel.
      response.id = salvage_request_id(line);
      response.ok = false;
      response.error = e.what();
      slots.push_back(std::move(response));
      ++errors;
      REMGEN_COUNTER_ADD("serve.parse_errors", 1);
    }
  }

  // Execute concurrently into index-addressed slots: results are identical
  // at any exec::thread_count().
  std::vector<double> latencies_us(valid.size(), 0.0);
  std::vector<Response> executed = exec::parallel_map(
      valid.size(),
      [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        Response response = execute(valid[i].second);
        latencies_us[i] = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        return response;
      },
      exec::chunk_for_cost(valid.size(), /*est_item_us=*/100.0), "serve.replay");
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (!executed[i].ok) ++errors;
    slots[valid[i].first] = std::move(executed[i]);
  }

  std::stable_sort(slots.begin(), slots.end(),
                   [](const Response& a, const Response& b) { return a.id < b.id; });
  for (const Response& response : slots) out << response.to_jsonl() << '\n';

  ReplayStats stats;
  stats.requests = slots.size();
  stats.errors = errors;
  stats.cache_hits = cache_.hits() - cache_hits_at_entry;
  stats.cache_misses = cache_.misses() - cache_misses_at_entry;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  stats.qps = stats.wall_seconds > 0.0 ? static_cast<double>(slots.size()) / stats.wall_seconds
                                       : 0.0;
  stats.latency_us = util::percentiles(latencies_us);
  for (const double us : latencies_us) {
    REMGEN_HISTOGRAM_OBSERVE("serve.latency_us", us, {10, 100, 1000, 10000, 100000});
  }
  REMGEN_GAUGE_SET("serve.cache.entries", static_cast<double>(cache_.size()));
  REMGEN_COUNTER_ADD("serve.cache.hits", static_cast<std::int64_t>(stats.cache_hits));
  REMGEN_COUNTER_ADD("serve.cache.misses", static_cast<std::int64_t>(stats.cache_misses));
  return stats;
}

}  // namespace remgen::serve
