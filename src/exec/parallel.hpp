// Deterministic fork/join algorithms on top of the shared thread pool.
//
// parallel_for / parallel_map are drop-in replacements for plain loops with
// one contract: the result must not depend on the execution schedule. Bodies
// write only to index-addressed slots (parallel_map enforces this shape), so
// running at exec::thread_count() == 1 — a literal in-order loop on the
// calling thread — produces byte-identical output to any other width.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "exec/config.hpp"
#include "exec/thread_pool.hpp"
#include "obs/profile.hpp"

namespace remgen::exec {

namespace detail {

/// Default chunk size: ~4 chunks per execution context balances scheduling
/// overhead against tail latency without making claim order observable.
inline std::size_t default_chunk(std::size_t n, std::size_t contexts) {
  const std::size_t chunk = n / (contexts * 4);
  return chunk == 0 ? 1 : chunk;
}

}  // namespace detail

/// Cost-based chunk size for parallel_for/parallel_map: groups items so one
/// claimed chunk carries roughly 500us of estimated work — enough to amortise
/// the atomic claim and per-chunk trace record — while still leaving at least
/// two chunks per execution context for load balancing. Replaces the blunt
/// `chunk = 1` that coarse-grained loops (REM sweep, grid search) used to
/// pass, which maximised scheduling overhead for cheap items. Chunking never
/// affects results: parallel bodies are schedule-independent by contract.
[[nodiscard]] inline std::size_t chunk_for_cost(std::size_t n, double est_item_us) {
  if (n == 0) return 1;
  constexpr double kTargetChunkUs = 500.0;
  std::size_t chunk =
      est_item_us <= 0.0
          ? n
          : static_cast<std::size_t>(kTargetChunkUs / std::max(est_item_us, 1e-3));
  const std::size_t contexts = std::max<std::size_t>(thread_count(), 1);
  const std::size_t cap = std::max<std::size_t>(n / (2 * contexts), 1);
  return std::clamp<std::size_t>(chunk, 1, cap);
}

/// Runs `body(i)` for every i in [0, n). Chunks of `chunk` consecutive
/// indices are claimed atomically by the pool's workers plus the calling
/// thread; `chunk == 0` picks a size automatically. With thread_count() == 1
/// (or inside an enclosing parallel region) this is a plain sequential loop.
/// The first exception thrown by any iteration is rethrown on the caller.
/// `label` names the region in task traces and the Amdahl breakdown.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t chunk = 0,
                  const char* label = "exec.region") {
  if (n == 0) return;
  ThreadPool* pool = shared_pool();
  if (pool == nullptr || ThreadPool::in_parallel_region()) {
    // Sequential fallback. Top-level loops still report themselves as
    // parallelizable work, so the Amdahl serial fraction measured at
    // --threads 1 matches what a wider run could exploit. Nested loops
    // (inside a region) are already covered by the enclosing region.
    const bool report =
        obs::profiling_enabled() && !ThreadPool::in_parallel_region();
    const std::uint64_t t0 = report ? obs::wall_clock_us() : 0;
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (report) {
      const std::uint64_t wall = obs::wall_clock_us() - t0;
      obs::note_parallel_region(wall, wall, 1);
    }
    return;
  }
  if (chunk == 0) chunk = detail::default_chunk(n, pool->worker_count() + 1);
  const std::function<void(std::size_t, std::size_t)> run =
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      };
  pool->run_chunked(n, chunk, run, label);
}

/// Computes `fn(i)` for every i in [0, n) and returns the results in index
/// order — the reduction order is fixed regardless of which thread produced
/// which element. R needs no default constructor (slots are std::optional
/// internally). Exceptions propagate like parallel_for.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t chunk = 0,
                  const char* label = "exec.region")
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<std::optional<R>> slots(n);
  parallel_for(
      n, [&](std::size_t i) { slots[i].emplace(fn(i)); }, chunk, label);
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace remgen::exec
