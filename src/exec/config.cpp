#include "exec/config.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace remgen::exec {

namespace {

std::size_t resolve_default() {
  if (const char* env = std::getenv("REMGEN_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return hardware_threads();
}

/// 0 = "not yet resolved / reset": thread_count() re-resolves the default.
std::atomic<std::size_t>& configured() {
  static std::atomic<std::size_t> value{0};
  return value;
}

}  // namespace

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t thread_count() {
  std::size_t value = configured().load(std::memory_order_relaxed);
  if (value == 0) {
    value = resolve_default();
    configured().store(value, std::memory_order_relaxed);
  }
  return value;
}

void set_thread_count(std::size_t n) {
  configured().store(n, std::memory_order_relaxed);
}

}  // namespace remgen::exec
