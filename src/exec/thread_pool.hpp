// A work-stealing-free, chunked thread pool.
//
// One parallel region runs at a time: run_chunked splits [0, n) into fixed
// chunks, workers (plus the calling thread) claim chunks off a single atomic
// cursor, and the call returns when every chunk has finished. There are no
// per-task queues to steal from — determinism comes from the caller writing
// results only into index-addressed slots, so the claim order never shows in
// the output. The first exception thrown by a chunk is captured and rethrown
// on the calling thread after the region drains.
//
// Nested regions execute inline on the claiming thread (a worker re-entering
// run_chunked would deadlock waiting for itself), which keeps nested
// parallel_for calls correct, sequential, and deterministic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace remgen::exec {

class ThreadPool {
 public:
  /// Spawns `workers` threads (may be 0: run_chunked then executes entirely
  /// on the calling thread).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; outstanding regions must have completed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Runs `body(begin, end)` over [0, n) in chunks of `chunk` indices
  /// (the last chunk may be short) across the workers and the calling
  /// thread. Blocks until every chunk completed; rethrows the first chunk
  /// exception. Thread-safe: concurrent callers serialize per region.
  /// Called from inside a region (a worker or a nested caller), the whole
  /// range executes inline on the current thread. `label` names the region
  /// in task traces and the Chrome-trace export.
  void run_chunked(std::size_t n, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   const char* label = "exec.region");

  /// True while the calling thread is executing a chunk (used to inline
  /// nested regions).
  [[nodiscard]] static bool in_parallel_region() noexcept;

 private:
  /// One fork/join region: a chunk cursor plus completion accounting.
  struct Region {
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t total_chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    const char* label = "exec.region";      ///< Task-trace name.
    std::uint64_t id = 0;                   ///< Process-wide region sequence.
    std::uint64_t enqueue_us = 0;           ///< Submission time (task waits).
    std::vector<std::string> profile_path;  ///< Submitter's open phases.
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::atomic<std::uint64_t> busy_us{0};  ///< Summed chunk execution time.
    std::atomic<bool> failed{false};        ///< Fast-path skip after an error.
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker_index);
  /// Claims and executes chunks until the region's cursor is exhausted.
  void drain(Region& region);

  std::vector<std::thread> workers_;

  std::mutex mutex_;                     ///< Guards region_/seq_/stop_.
  std::condition_variable work_cv_;      ///< Workers wait for a new region.
  std::condition_variable done_cv_;      ///< The caller waits for completion.
  std::shared_ptr<Region> region_;       ///< Active region, or nullptr.
  std::uint64_t seq_ = 0;                ///< Bumped per region, wakes workers.
  bool stop_ = false;

  std::mutex caller_mutex_;              ///< Serializes top-level regions.
};

/// The process-wide pool, lazily (re)created to exec::thread_count() - 1
/// workers (the calling thread is the remaining execution context). Returns
/// nullptr when thread_count() == 1 — callers fall back to plain loops.
[[nodiscard]] ThreadPool* shared_pool();

}  // namespace remgen::exec
