#include "exec/thread_pool.hpp"

#include "exec/config.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::exec {

namespace {

/// Set while the current thread executes a chunk, so nested regions inline.
thread_local bool t_in_region = false;

/// 0 on the submitting thread, 1..N on pool workers — the "worker" field of
/// task-trace events and the worker-N lane names.
thread_local std::uint32_t t_worker_index = 0;

/// Tracks this thread's previous chunk end within a region, so the trace can
/// attribute the gap between consecutive chunks as worker idle time.
struct IdleTracker {
  std::uint64_t region_id = 0;
  std::uint64_t last_end_us = 0;
};
thread_local IdleTracker t_idle;

std::uint64_t next_region_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

bool ThreadPool::in_parallel_region() noexcept { return t_in_region; }

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_index = static_cast<std::uint32_t>(worker_index);
  obs::name_current_thread(util::format("worker-{}", worker_index));
  std::uint64_t seen_seq = 0;
  while (true) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = seq_;
      region = region_;
    }
    if (region) drain(*region);
  }
}

void ThreadPool::drain(Region& region) {
  t_in_region = true;
  // Workers adopt the submitting thread's open phase path, so phases entered
  // inside the chunk body aggregate under the same ancestors at any width.
  const obs::ProfileContext profile_context(&region.profile_path);
  while (true) {
    const std::size_t c = region.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.total_chunks) break;
    const std::size_t begin = c * region.chunk;
    const std::size_t end = std::min(begin + region.chunk, region.n);
    const bool traced = obs::enabled();
    const bool timed = traced || obs::profiling_enabled();
    const std::uint64_t t0 = timed ? obs::wall_clock_us() : 0;
    try {
      // Skip the body once a sibling chunk failed; the region still drains
      // so completion accounting stays exact.
      if (!region.failed.load(std::memory_order_relaxed)) (*region.body)(begin, end);
    } catch (...) {
      region.failed.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(region.error_mutex);
      if (!region.error) region.error = std::current_exception();
    }
    if (timed) {
      const std::uint64_t t1 = obs::wall_clock_us();
      region.busy_us.fetch_add(t1 - t0, std::memory_order_relaxed);
      if (traced) {
        // One task-trace event per executed chunk, into this thread's
        // lock-free buffer: queue wait (enqueue -> start), execution time,
        // and the idle gap since this thread's previous chunk in the same
        // region.
        obs::TaskEvent event;
        event.label = region.label;
        event.region_id = region.id;
        event.chunk_index = static_cast<std::uint32_t>(c);
        event.worker = t_worker_index;
        event.tid = obs::current_tid();
        event.enqueue_us = region.enqueue_us;
        event.start_us = t0;
        event.end_us = t1;
        event.wait_us = t0 > region.enqueue_us ? t0 - region.enqueue_us : 0;
        if (t_idle.region_id == region.id && t0 > t_idle.last_end_us) {
          event.idle_us = t0 - t_idle.last_end_us;
        }
        t_idle.region_id = region.id;
        t_idle.last_end_us = t1;
        REMGEN_HISTOGRAM_OBSERVE("exec.task_wait_us", event.wait_us,
                                 {10, 100, 1000, 10000, 100000});
        REMGEN_HISTOGRAM_OBSERVE("exec.chunk_exec_us", t1 - t0,
                                 {10, 100, 1000, 10000, 100000, 1000000});
        REMGEN_HISTOGRAM_OBSERVE("exec.worker_idle_us", event.idle_us,
                                 {10, 100, 1000, 10000, 100000});
        obs::record_task_event(std::move(event));
      }
    }
    REMGEN_COUNTER_ADD("exec.tasks", 1);
    if (region.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.total_chunks) {
      // Take and drop the pool mutex so the completion store cannot slip
      // between the caller's predicate check and its sleep (lost wakeup).
      { const std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
  t_in_region = false;
}

void ThreadPool::run_chunked(std::size_t n, std::size_t chunk,
                             const std::function<void(std::size_t, std::size_t)>& body,
                             const char* label) {
  REMGEN_EXPECTS(chunk > 0);
  if (n == 0) return;

  // Nested region (worker thread or re-entrant caller): run inline. The
  // sequential in-order execution keeps nested parallel_for deterministic.
  if (t_in_region) {
    body(0, n);
    return;
  }

  const std::lock_guard<std::mutex> caller_lock(caller_mutex_);
  auto region = std::make_shared<Region>();
  region->n = n;
  region->chunk = chunk;
  region->total_chunks = (n + chunk - 1) / chunk;
  region->body = &body;
  region->label = label;
  region->id = next_region_id();
  if (obs::enabled() || obs::profiling_enabled()) {
    region->enqueue_us = obs::wall_clock_us();
  }
  if (obs::profiling_enabled()) {
    region->profile_path = obs::current_phase_path();
  }

  obs::Span span("exec.parallel_for", "exec");
  span.arg("n", n);
  span.arg("chunks", region->total_chunks);
  span.arg("workers", workers_.size());
  REMGEN_COUNTER_ADD("exec.regions", 1);
  REMGEN_GAUGE_SET("exec.queue_depth", region->total_chunks);
  const bool timed = obs::enabled() || obs::profiling_enabled();
  const std::uint64_t region_t0 = timed ? obs::wall_clock_us() : 0;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    region_ = region;
    ++seq_;
  }
  work_cv_.notify_all();

  // The calling thread is an execution context too.
  drain(*region);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return region->done_chunks.load(std::memory_order_acquire) == region->total_chunks;
    });
    region_ = nullptr;
  }

  REMGEN_GAUGE_SET("exec.queue_depth", 0);
  if (timed) {
    const std::uint64_t wall = obs::wall_clock_us() - region_t0;
    const std::size_t contexts = workers_.size() + 1;
    const std::uint64_t busy = region->busy_us.load(std::memory_order_relaxed);
    if (obs::enabled() && wall > 0) {
      // Utilization of the region: busy time over (contexts x wall time).
      obs::registry()
          .gauge("exec.pool.utilization")
          .set(static_cast<double>(busy) /
               (static_cast<double>(wall) * static_cast<double>(contexts)));
    }
    // Feeds the Amdahl report (no-op unless profiling is enabled).
    obs::note_parallel_region(wall, busy, contexts);
  }

  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(region->error_mutex);
    error = region->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool* shared_pool() {
  // The pool is (re)built lazily when the configured width changes; callers
  // never hold a region open across a set_thread_count, so swapping here is
  // safe. Guarded so concurrent top-level callers agree on one instance.
  static std::mutex pool_mutex;
  static std::unique_ptr<ThreadPool> pool;
  static std::size_t pool_width = 0;

  const std::size_t width = thread_count();
  if (width <= 1) return nullptr;

  const std::lock_guard<std::mutex> lock(pool_mutex);
  if (!pool || pool_width != width) {
    pool.reset();  // join the old workers before spawning the new set
    pool = std::make_unique<ThreadPool>(width - 1);
    pool_width = width;
    REMGEN_GAUGE_SET("exec.pool.workers", width - 1);
  }
  return pool.get();
}

}  // namespace remgen::exec
