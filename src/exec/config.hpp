// Process-wide parallel-execution configuration.
//
// Every parallel region in remgen sizes itself from exec::thread_count():
//   * --threads N on the CLI (exec::set_thread_count) takes precedence,
//   * otherwise the REMGEN_THREADS environment variable,
//   * otherwise the hardware concurrency.
// A count of 1 is the exact sequential fallback: parallel_for/parallel_map
// degenerate to plain in-order loops on the calling thread, and every
// parallel path in the toolchain is required (and tested) to produce output
// byte-identical to that fallback at any other thread count.
#pragma once

#include <cstddef>

namespace remgen::exec {

/// The configured execution width (always >= 1). Resolved once from
/// REMGEN_THREADS / hardware concurrency, unless overridden.
[[nodiscard]] std::size_t thread_count();

/// Overrides the execution width. `n == 0` resets to the default resolution
/// (REMGEN_THREADS, then hardware concurrency). Takes effect for the next
/// parallel region; never call it from inside one.
void set_thread_count(std::size_t n);

/// The machine's hardware concurrency, floored at 1.
[[nodiscard]] std::size_t hardware_threads();

}  // namespace remgen::exec
