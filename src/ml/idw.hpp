// Inverse-distance-weighting interpolation (extension beyond the paper's
// estimator set): the classic geostatistical baseline for radio-map
// interpolation, fitted per MAC address on the (x, y, z) coordinates.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "ml/baseline.hpp"
#include "ml/estimator.hpp"
#include "ml/kdtree.hpp"
#include "ml/serialize.hpp"

namespace remgen::ml {

/// IDW hyperparameters.
struct IdwConfig {
  double power = 2.0;          ///< Weight exponent: w = 1 / d^power.
  std::size_t max_neighbors = 0;  ///< 0 = use every sample of the MAC.
};

/// Per-MAC inverse distance weighting with mean-per-MAC fallback.
class IdwRegressor final : public Estimator, public Serializable {
 public:
  explicit IdwRegressor(const IdwConfig& config = {});

  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched kernel: the weight-exponent dispatch (power 2/1/general) and
  /// the per-MAC hash lookup (for runs of equal-MAC queries) are hoisted out
  /// of the per-query loop; profile phase fires once per batch.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::string_view serial_tag() const override { return "idw"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

 private:
  struct MacData {
    std::vector<geom::Vec3> positions;
    std::vector<double> values;
    /// Built when max_neighbors > 0: neighbour selection goes through the
    /// tree instead of a full scan + nth_element per query.
    std::optional<KdTree> tree;
  };

  IdwConfig config_;
  std::unordered_map<radio::MacAddress, MacData> per_mac_;
  MeanPerMacBaseline fallback_;
};

}  // namespace remgen::ml
