#include "ml/neural_net.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

NeuralNetRegressor::NeuralNetRegressor(const NeuralNetConfig& config)
    : config_(config), encoder_(), target_scaler_() {
  REMGEN_EXPECTS(config.learning_rate > 0.0);
  REMGEN_EXPECTS(config.epochs > 0);
  REMGEN_EXPECTS(config.batch_size > 0);
}

double NeuralNetRegressor::activate(double x) const {
  switch (config_.activation) {
    case Activation::Sigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::Relu: return x > 0.0 ? x : 0.0;
    case Activation::Tanh: return std::tanh(x);
  }
  return x;
}

double NeuralNetRegressor::activate_grad(double y) const {
  switch (config_.activation) {
    case Activation::Sigmoid: return y * (1.0 - y);
    case Activation::Relu: return y > 0.0 ? 1.0 : 0.0;
    case Activation::Tanh: return 1.0 - y * y;
  }
  return 1.0;
}

std::vector<double> NeuralNetRegressor::forward(
    const std::vector<double>& input, std::vector<std::vector<double>>* activations) const {
  std::vector<double> current = input;
  if (activations != nullptr) activations->push_back(current);
  for (const Layer& layer : layers_) {
    std::vector<double> next(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.b[o];
      const double* row = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) z += row[i] * current[i];
      next[o] = layer.linear ? z : activate(z);
    }
    current = std::move(next);
    if (activations != nullptr) activations->push_back(current);
  }
  return current;
}

void NeuralNetRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.nn.fit");
  REMGEN_COUNTER_ADD("ml.nn.fits", 1);
  encoder_ = data::FeatureEncoder::fit(train, config_.features);
  const std::vector<std::vector<double>> features = encoder_.encode_all(train);
  std::vector<double> raw_targets = data::rss_targets(train);
  target_scaler_ = data::TargetScaler::fit(raw_targets);
  std::vector<double> targets(raw_targets.size());
  for (std::size_t i = 0; i < raw_targets.size(); ++i) {
    targets[i] = target_scaler_.transform(raw_targets[i]);
  }

  // Build layers: input -> hidden... -> 1 linear output.
  util::Rng rng(config_.seed);
  layers_.clear();
  std::size_t prev = encoder_.dimension();
  std::vector<std::size_t> sizes = config_.hidden_layers;
  sizes.push_back(1);
  for (std::size_t li = 0; li < sizes.size(); ++li) {
    Layer layer;
    layer.in = prev;
    layer.out = sizes[li];
    layer.linear = (li == sizes.size() - 1);
    // Xavier/Glorot uniform initialisation.
    const double limit = std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    layer.w.resize(layer.in * layer.out);
    for (double& w : layer.w) w = rng.uniform(-limit, limit);
    layer.b.assign(layer.out, 0.0);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.out, 0.0);
    layer.vb.assign(layer.out, 0.0);
    prev = layer.out;
    layers_.push_back(std::move(layer));
  }

  const std::size_t n = features.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::size_t adam_step = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    REMGEN_COUNTER_ADD("ml.nn.epochs", 1);
    rng.shuffle(order);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      const double batch_n = static_cast<double>(end - start);

      // Accumulate gradients over the minibatch.
      std::vector<std::vector<double>> grad_w(layers_.size());
      std::vector<std::vector<double>> grad_b(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        grad_w[l].assign(layers_[l].w.size(), 0.0);
        grad_b[l].assign(layers_[l].b.size(), 0.0);
      }

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        std::vector<std::vector<double>> acts;
        const std::vector<double> out = forward(features[idx], &acts);
        const double err = out[0] - targets[idx];
        epoch_loss += err * err;

        // Backprop: delta at the output (MSE, linear output).
        std::vector<double> delta{2.0 * err / batch_n};
        for (std::size_t li = layers_.size(); li-- > 0;) {
          const Layer& layer = layers_[li];
          const std::vector<double>& input = acts[li];
          const std::vector<double>& output = acts[li + 1];

          // dL/dz for this layer (delta currently holds dL/d(output)).
          std::vector<double> dz(layer.out);
          for (std::size_t o = 0; o < layer.out; ++o) {
            dz[o] = delta[o] * (layer.linear ? 1.0 : activate_grad(output[o]));
          }
          for (std::size_t o = 0; o < layer.out; ++o) {
            grad_b[li][o] += dz[o];
            double* grow = grad_w[li].data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) grow[i] += dz[o] * input[i];
          }
          if (li > 0) {
            std::vector<double> prev_delta(layer.in, 0.0);
            for (std::size_t o = 0; o < layer.out; ++o) {
              const double* row = layer.w.data() + o * layer.in;
              for (std::size_t i = 0; i < layer.in; ++i) prev_delta[i] += row[i] * dz[o];
            }
            delta = std::move(prev_delta);
          }
        }
      }

      // Adam update.
      ++adam_step;
      const double b1 = config_.adam_beta1;
      const double b2 = config_.adam_beta2;
      const double bias1 = 1.0 - std::pow(b1, static_cast<double>(adam_step));
      const double bias2 = 1.0 - std::pow(b2, static_cast<double>(adam_step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        auto update = [&](std::vector<double>& param, std::vector<double>& m,
                          std::vector<double>& v, const std::vector<double>& g) {
          for (std::size_t i = 0; i < param.size(); ++i) {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            const double mhat = m[i] / bias1;
            const double vhat = v[i] / bias2;
            param[i] -= config_.learning_rate * mhat / (std::sqrt(vhat) + config_.adam_epsilon);
          }
        };
        update(layer.w, layer.mw, layer.vw, grad_w[l]);
        update(layer.b, layer.mb, layer.vb, grad_b[l]);
      }
    }
    final_loss_ = epoch_loss / static_cast<double>(n);
  }
  fitted_ = true;
}

double NeuralNetRegressor::predict(const data::Sample& query) const {
  double out = 0.0;
  predict_batch({&query, 1}, {&out, 1});
  return out;
}

void NeuralNetRegressor::predict_batch(std::span<const data::Sample> queries,
                                       std::span<double> out) const {
  REMGEN_EXPECTS(fitted_);
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.nn.predict");
  REMGEN_COUNTER_ADD("ml.nn.predicts", queries.size());
  // Ping-pong layer buffers, per-thread: the whole batch runs without a
  // single heap allocation once the buffers are warm. The accumulation order
  // matches forward() exactly, so predictions are bit-identical to it.
  thread_local std::vector<double> current;
  thread_local std::vector<double> next;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    current.resize(encoder_.dimension());
    encoder_.encode_into(queries[qi], current);
    for (const Layer& layer : layers_) {
      next.resize(layer.out);
      for (std::size_t o = 0; o < layer.out; ++o) {
        double z = layer.b[o];
        const double* row = layer.w.data() + o * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) z += row[i] * current[i];
        next[o] = layer.linear ? z : activate(z);
      }
      std::swap(current, next);
    }
    out[qi] = target_scaler_.inverse(current[0]);
  }
}

void NeuralNetRegressor::save(util::BinaryWriter& w) const {
  REMGEN_EXPECTS(fitted_);
  w.u64(config_.hidden_layers.size());
  for (const std::size_t h : config_.hidden_layers) w.u64(h);
  w.u8(static_cast<std::uint8_t>(config_.activation));
  w.f64(config_.learning_rate);
  w.u64(config_.epochs);
  w.u64(config_.batch_size);
  w.f64(config_.adam_beta1);
  w.f64(config_.adam_beta2);
  w.f64(config_.adam_epsilon);
  w.u64(config_.seed);
  data::save_feature_config(w, config_.features);
  encoder_.save(w);
  target_scaler_.save(w);
  w.f64(final_loss_);
  w.u64(layers_.size());
  for (const Layer& layer : layers_) {
    w.u64(layer.in);
    w.u64(layer.out);
    w.u8(layer.linear ? 1 : 0);
    for (const double v : layer.w) w.f64(v);
    for (const double v : layer.b) w.f64(v);
  }
}

void NeuralNetRegressor::load(util::BinaryReader& r) {
  config_.hidden_layers.resize(r.u64());
  for (std::size_t& h : config_.hidden_layers) h = r.u64();
  config_.activation = static_cast<Activation>(r.u8());
  config_.learning_rate = r.f64();
  config_.epochs = r.u64();
  config_.batch_size = r.u64();
  config_.adam_beta1 = r.f64();
  config_.adam_beta2 = r.f64();
  config_.adam_epsilon = r.f64();
  config_.seed = r.u64();
  config_.features = data::load_feature_config(r);
  encoder_ = data::FeatureEncoder::load(r);
  target_scaler_ = data::TargetScaler::load(r);
  final_loss_ = r.f64();
  layers_.resize(r.u64());
  for (Layer& layer : layers_) {
    layer.in = r.u64();
    layer.out = r.u64();
    layer.linear = r.u8() != 0;
    layer.w.resize(layer.in * layer.out);
    for (double& v : layer.w) v = r.f64();
    layer.b.resize(layer.out);
    for (double& v : layer.b) v = r.f64();
    // Moments are reset: they only matter to a fit() that would restart
    // training, which re-initialises them anyway.
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.out, 0.0);
    layer.vb.assign(layer.out, 0.0);
  }
  fitted_ = true;
}

std::string NeuralNetRegressor::name() const {
  std::string arch;
  for (const std::size_t h : config_.hidden_layers) {
    if (!arch.empty()) arch += "-";
    arch += util::format("{}", h);
  }
  const char* act = config_.activation == Activation::Sigmoid  ? "sigmoid"
                    : config_.activation == Activation::Relu ? "relu"
                                                             : "tanh";
  return util::format("neural-net({},{},adam)", arch, act);
}

}  // namespace remgen::ml
