#include "ml/per_mac_knn.hpp"

#include <map>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

PerMacKnn::PerMacKnn(const KnnConfig& config) : config_(config) {
  // Samples with the same MAC only: the one-hot block is constant within a
  // group, so the feature set reduces to the coordinates. With p=2 that is
  // exactly the shape KnnRegressor accelerates with its KD-tree, so every
  // per-MAC model queries in O(log n).
  config_.features.include_position = true;
  config_.features.include_mac_onehot = false;
  config_.features.include_channel_onehot = false;
}

void PerMacKnn::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.per_mac_knn.fit");
  REMGEN_COUNTER_ADD("ml.per_mac_knn.fits", 1);
  fallback_.fit(train);

  std::map<radio::MacAddress, std::vector<data::Sample>> groups;
  for (const data::Sample& s : train) groups[s.mac].push_back(s);

  // Per-MAC models are independent, so refits (the ingest epoch path hits
  // this on every epoch) fan out across the exec pool. Groups are fitted in
  // MAC-sorted slot order and inserted sequentially afterwards — the fitted
  // ensemble is byte-identical at any thread count.
  std::vector<const std::vector<data::Sample>*> group_samples;
  std::vector<radio::MacAddress> group_macs;
  group_samples.reserve(groups.size());
  group_macs.reserve(groups.size());
  for (const auto& [mac, samples] : groups) {
    group_macs.push_back(mac);
    group_samples.push_back(&samples);
  }
  std::vector<std::unique_ptr<KnnRegressor>> fitted = exec::parallel_map(
      group_samples.size(),
      [&](std::size_t g) {
        auto model = std::make_unique<KnnRegressor>(config_);
        model->fit(*group_samples[g]);
        return model;
      },
      /*chunk=*/1, "ml.per_mac_knn.fit");

  models_.clear();
  for (std::size_t g = 0; g < group_macs.size(); ++g) {
    models_[group_macs[g]] = std::move(fitted[g]);
  }
}

double PerMacKnn::predict(const data::Sample& query) const {
  double out = 0.0;
  predict_batch({&query, 1}, {&out, 1});
  return out;
}

void PerMacKnn::predict_batch(std::span<const data::Sample> queries,
                              std::span<double> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.per_mac_knn.predict");
  REMGEN_COUNTER_ADD("ml.per_mac_knn.predicts", queries.size());
  // Chop the batch into maximal runs of equal MAC and hand each run to the
  // owning model's batched kernel in one call.
  std::size_t begin = 0;
  while (begin < queries.size()) {
    std::size_t end = begin + 1;
    while (end < queries.size() && queries[end].mac == queries[begin].mac) ++end;
    const auto it = models_.find(queries[begin].mac);
    const std::span<const data::Sample> run = queries.subspan(begin, end - begin);
    const std::span<double> run_out = out.subspan(begin, end - begin);
    if (it == models_.end()) {
      fallback_.predict_batch(run, run_out);
    } else {
      it->second->predict_batch(run, run_out);
    }
    begin = end;
  }
}

void PerMacKnn::save(util::BinaryWriter& w) const {
  save_knn_config(w, config_);
  fallback_.save(w);
  // MAC-sorted so repeated saves of the same model are byte-identical.
  std::map<radio::MacAddress, const KnnRegressor*> sorted;
  for (const auto& [mac, model] : models_) sorted[mac] = model.get();
  w.u64(sorted.size());
  for (const auto& [mac, model] : sorted) {
    save_mac(w, mac);
    model->save(w);
  }
}

void PerMacKnn::load(util::BinaryReader& r) {
  config_ = load_knn_config(r);
  fallback_.load(r);
  models_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const radio::MacAddress mac = load_mac(r);
    auto model = std::make_unique<KnnRegressor>(config_);
    model->load(r);
    models_[mac] = std::move(model);
  }
}

std::string PerMacKnn::name() const {
  return util::format("per-mac-knn(k={},weights={})", config_.n_neighbors,
                      config_.weights == KnnWeights::Distance ? "distance" : "uniform");
}

}  // namespace remgen::ml
