// Dense feed-forward neural network regressor with the Adam optimizer.
//
// The paper's optimized network: inputs are the (normalized) x, y, z
// coordinates and the one-hot encoded MAC address; one hidden layer of 16
// fully connected nodes with sigmoid activation; a single linear output
// node; Adam optimizer; RSS targets standardized during training.
#pragma once

#include <cstdint>
#include <vector>

#include "data/encoding.hpp"
#include "ml/estimator.hpp"
#include "ml/serialize.hpp"
#include "util/rng.hpp"

namespace remgen::ml {

/// Hidden-layer activation.
enum class Activation { Sigmoid, Relu, Tanh };

/// Network and training hyperparameters.
struct NeuralNetConfig {
  std::vector<std::size_t> hidden_layers{16};
  Activation activation = Activation::Sigmoid;
  double learning_rate = 0.01;
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_epsilon = 1e-8;
  std::uint64_t seed = 42;
  data::FeatureConfig features{.include_position = true,
                               .include_mac_onehot = true,
                               .mac_onehot_scale = 1.0,
                               .include_channel_onehot = false,
                               .normalize_position = true};
};

/// Multi-layer perceptron trained with minibatch Adam on MSE loss.
class NeuralNetRegressor final : public Estimator, public Serializable {
 public:
  explicit NeuralNetRegressor(const NeuralNetConfig& config = {});

  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched inference: encode-into-scratch plus ping-pong layer buffers —
  /// zero allocations per query once warm; phase/counter fire once per batch.
  /// Arithmetic is identical to forward(), so results are bit-identical.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override;

  /// Mean squared training loss (standardized targets) after the last epoch.
  [[nodiscard]] double final_training_loss() const noexcept { return final_loss_; }

  /// Serialises the inference state (weights, encoder, scaler). Adam moment
  /// buffers are deliberately not stored — they only matter to a fit() that
  /// would restart training, which re-initialises them anyway.
  [[nodiscard]] std::string_view serial_tag() const override { return "neural-net"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

 private:
  /// One dense layer y = act(W x + b) with Adam moment buffers.
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> w;  ///< out x in, row-major.
    std::vector<double> b;  ///< out.
    std::vector<double> mw, vw, mb, vb;  ///< Adam moments.
    bool linear = false;    ///< Output layer has no activation.
  };

  [[nodiscard]] std::vector<double> forward(const std::vector<double>& input,
                                            std::vector<std::vector<double>>* activations) const;
  [[nodiscard]] double activate(double x) const;
  [[nodiscard]] double activate_grad(double y) const;  ///< From the activation output.

  NeuralNetConfig config_;
  data::FeatureEncoder encoder_;
  data::TargetScaler target_scaler_;
  std::vector<Layer> layers_;
  double final_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace remgen::ml
