// k-nearest-neighbours regression, mirroring the scikit-learn configuration
// surface the paper tunes: metric=minkowski with exponent p, weights in
// {uniform, distance}, n_neighbors, and the feature-space tricks (one-hot
// encoded MAC block, optionally scaled).
#pragma once

#include <optional>
#include <vector>

#include "data/encoding.hpp"
#include "ml/estimator.hpp"
#include "ml/kdtree.hpp"
#include "ml/serialize.hpp"

namespace remgen::ml {

/// Neighbour weighting scheme.
enum class KnnWeights { Uniform, Distance };

/// kNN hyperparameters.
struct KnnConfig {
  std::size_t n_neighbors = 3;
  KnnWeights weights = KnnWeights::Distance;
  double minkowski_p = 2.0;  ///< p=2 is Euclidean (the paper's grid-search pick).
  data::FeatureConfig features{};  ///< Position + one-hot MAC by default.
};

/// Snapshot (de)serialisation of kNN hyperparameters (shared with PerMacKnn).
void save_knn_config(util::BinaryWriter& w, const KnnConfig& config);
[[nodiscard]] KnnConfig load_knn_config(util::BinaryReader& r);

/// Brute-force kNN regressor over the encoded feature space.
class KnnRegressor final : public Estimator, public Serializable {
 public:
  explicit KnnRegressor(const KnnConfig& config = {});

  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched kernel: Minkowski dispatch, one-hot penalty constants, and
  /// scratch buffers are hoisted once per batch; the profile phase and
  /// predict counter fire once per batch instead of once per query.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const KnnConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::string_view serial_tag() const override { return "knn"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

 private:
  /// Builds the KD-tree when the feature space admits the exact tree path
  /// (shared between fit() and load(); the tree itself is never serialised).
  void maybe_build_tree();

  /// Recovers each training row's MAC/channel vocabulary index by scanning
  /// its one-hot block (shared between fit() and load()). The brute kernel
  /// uses these to fold a row's entire one-hot block into an O(1) penalty
  /// term instead of scanning the (mostly zero) block per query.
  void rebuild_row_keys();

  KnnConfig config_;
  data::FeatureEncoder encoder_;
  /// Row-major SoA storage: one contiguous allocation, cache-linear scans.
  data::FeatureMatrix features_;
  std::vector<double> targets_;
  std::vector<int> row_mac_;      ///< Per-row MAC vocab index (-1 if none).
  std::vector<int> row_channel_;  ///< Per-row channel vocab index (-1 if none).
  /// Engaged when the feature space is the raw (x, y, z) coordinates with
  /// p = 2: the Euclidean KD-tree query then returns the same neighbour set
  /// as the brute-force scan, at O(log n) per query instead of O(n).
  std::optional<KdTree> tree_;
  bool fitted_ = false;
};

/// Minkowski distance of order p between equal-length vectors.
[[nodiscard]] double minkowski_distance(std::span<const double> a, std::span<const double> b,
                                        double p);

}  // namespace remgen::ml
