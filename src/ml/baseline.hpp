// The paper's baseline estimator: always predicts the per-MAC mean RSS
// (global mean for MACs unseen in training).
#pragma once

#include <unordered_map>

#include "ml/estimator.hpp"
#include "ml/serialize.hpp"
#include "radio/mac_address.hpp"

namespace remgen::ml {

/// Mean-per-MAC baseline ("the predictor generally utilizing the mean per
/// MAC address", paper RMSE 4.8107 dBm).
class MeanPerMacBaseline final : public Estimator, public Serializable {
 public:
  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched lookup: profile phase fires once per batch, and runs of
  /// equal-MAC queries reuse one hash lookup.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override { return "baseline-mean-per-mac"; }

  [[nodiscard]] std::string_view serial_tag() const override { return "baseline-mean-per-mac"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

 private:
  std::unordered_map<radio::MacAddress, double> mean_per_mac_;
  double global_mean_ = 0.0;
};

}  // namespace remgen::ml
