#include "ml/kdtree_dynamic.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace remgen::ml {

DynamicKdTree::DynamicKdTree(std::size_t rebuild_interval)
    : rebuild_interval_(rebuild_interval) {
  REMGEN_EXPECTS(rebuild_interval >= 1);
  auto initial = std::make_shared<State>();
  initial->pending = std::make_shared<const std::vector<geom::Vec3>>();
  state_.store(std::move(initial), std::memory_order_release);
}

void DynamicKdTree::publish(std::shared_ptr<const State> next) {
  // The only mutation readers can observe: one release store of a fully
  // constructed, immutable generation. A concurrent nearest() holds its own
  // shared_ptr, so the previous generation stays alive until the last query
  // drops it.
  state_.store(std::move(next), std::memory_order_release);
}

void DynamicKdTree::insert(const geom::Vec3& point) {
  insert_batch({&point, 1});
}

void DynamicKdTree::insert_batch(std::span<const geom::Vec3> points) {
  if (points.empty()) return;
  all_points_.insert(all_points_.end(), points.begin(), points.end());
  const std::shared_ptr<const State> current = state();
  const std::size_t pending_count = all_points_.size() - current->covered;
  if (pending_count >= rebuild_interval_) {
    rebuild();
    return;
  }
  // Republish the pending tail as a fresh immutable vector. Bounded by
  // rebuild_interval, so each insert copies O(interval) at worst and the
  // amortised cost per point stays constant.
  auto next = std::make_shared<State>();
  next->tree = current->tree;
  next->covered = current->covered;
  next->pending = std::make_shared<const std::vector<geom::Vec3>>(
      all_points_.begin() + static_cast<std::ptrdiff_t>(current->covered), all_points_.end());
  publish(std::move(next));
}

void DynamicKdTree::rebuild() {
  const std::shared_ptr<const State> current = state();
  if (current->tree != nullptr && current->covered == all_points_.size() &&
      current->pending->empty()) {
    return;  // Nothing new since the last build.
  }
  REMGEN_SPAN("ml.kdtree_dynamic.rebuild");
  // Build completely off to the side; readers keep querying the old
  // generation. Insertion order indexing makes tree hit indices global
  // stream positions with no remap table.
  auto tree = std::make_shared<const KdTree>(std::span<const geom::Vec3>(all_points_));
  // The swap precondition the staleness tests lean on: a published tree
  // always covers exactly the points its generation claims.
  REMGEN_EXPECTS(tree->size() == all_points_.size());
  auto next = std::make_shared<State>();
  next->tree = std::move(tree);
  next->covered = all_points_.size();
  next->pending = std::make_shared<const std::vector<geom::Vec3>>();
  publish(std::move(next));
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  REMGEN_COUNTER_ADD("ml.kdtree_dynamic.rebuilds", 1);
}

std::size_t DynamicKdTree::size() const {
  const std::shared_ptr<const State> s = state();
  return s->covered + s->pending->size();
}

std::size_t DynamicKdTree::tree_size() const { return state()->covered; }

std::size_t DynamicKdTree::pending() const { return state()->pending->size(); }

void DynamicKdTree::merge_pending(const State& s, const geom::Vec3& query, std::size_t k,
                                  std::vector<KdHit>& hits) {
  const std::vector<geom::Vec3>& pending = *s.pending;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    hits.push_back({s.covered + i, pending[i].distance_to(query)});
  }
  // Deterministic total order: ties broken by insertion index, so the merged
  // result depends only on the point stream, never on rebuild timing.
  std::sort(hits.begin(), hits.end(), [](const KdHit& a, const KdHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  if (hits.size() > k) hits.resize(k);
}

std::vector<KdHit> DynamicKdTree::nearest(const geom::Vec3& query, std::size_t k) const {
  const std::shared_ptr<const State> s = state();
  std::vector<KdHit> hits;
  if (s->tree != nullptr) hits = s->tree->nearest(query, k);
  if (s->pending->empty()) return hits;  // Tree results verbatim (bit-identical).
  merge_pending(*s, query, k, hits);
  return hits;
}

std::size_t DynamicKdTree::nearest(const geom::Vec3& query, std::size_t k,
                                   KdQueryScratch& scratch) const {
  const std::shared_ptr<const State> s = state();
  std::size_t count = 0;
  if (s->tree != nullptr) {
    count = s->tree->nearest(query, k, scratch);
  } else {
    scratch.heap.clear();
  }
  if (s->pending->empty()) return count;
  scratch.heap.resize(count);  // Drop any stale capacity past the hit count.
  merge_pending(*s, query, k, scratch.heap);
  return scratch.heap.size();
}

}  // namespace remgen::ml
