// DynamicKdTree: a growing point index for the ingest path.
//
// KdTree is deliberately static — build once, query forever — which is
// exactly right for a frozen snapshot and exactly wrong for a live dataset
// absorbing samples. DynamicKdTree layers mutability on top without ever
// mutating a tree readers can see: inserts land in a small pending buffer;
// once the buffer reaches rebuild_interval, a fresh KdTree is built from
// scratch over ALL points (in insertion order, so indices are stable global
// stream positions) and swapped in behind a single atomic shared_ptr store.
//
// Readers load one immutable State (tree + pending snapshot) per query and
// never block: a query either sees the pre-swap state or the post-swap
// state, never a tree mid-rebuild. The pending buffer is republished as a
// fresh immutable vector on every insert (it is bounded by
// rebuild_interval, so the copy is O(interval), amortised O(1) per insert).
// Queries merge tree hits with a brute-force scan of the pending snapshot,
// ordered by (distance, insertion index) — deterministic for a given point
// stream regardless of when rebuilds happened. Immediately after a rebuild
// (empty pending) nearest() is the underlying KdTree verbatim, so results
// are bit-identical to a from-scratch KdTree over the same rows — the
// invariant test_ml_kdtree locks in.
//
// Concurrency contract: one writer (insert/rebuild), any number of
// concurrent readers (nearest/size). Writer calls must be externally
// serialised; readers need no synchronisation at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/kdtree.hpp"

namespace remgen::ml {

/// Buffered-insert KD-tree with rebuild-behind-atomic-swap publication.
class DynamicKdTree {
 public:
  /// Pending inserts accumulated before an automatic rebuild. Must be >= 1.
  explicit DynamicKdTree(std::size_t rebuild_interval = 1024);

  /// Buffers one point; rebuilds (and swaps) when the buffer is full.
  void insert(const geom::Vec3& point);
  void insert_batch(std::span<const geom::Vec3> points);

  /// Forces a rebuild over all points now; no-op when nothing is pending.
  void rebuild();

  /// Total points visible to queries (tree + pending).
  [[nodiscard]] std::size_t size() const;
  /// Points covered by the current tree (size() - pending).
  [[nodiscard]] std::size_t tree_size() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t rebuilds() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }

  /// The k nearest points across tree + pending, ordered by ascending
  /// (distance, insertion index). Hit indices are global stream positions.
  /// With an empty pending buffer this is KdTree::nearest verbatim
  /// (bit-identical hits, including tie order).
  [[nodiscard]] std::vector<KdHit> nearest(const geom::Vec3& query, std::size_t k) const;

  /// Scratch-reusing variant (see KdTree::nearest(query, k, scratch)): fills
  /// scratch.heap with the merged hits and returns the count.
  std::size_t nearest(const geom::Vec3& query, std::size_t k, KdQueryScratch& scratch) const;

 private:
  /// One immutable published generation. Readers hold it via shared_ptr, so
  /// a rebuild can never free state a query is still traversing.
  struct State {
    std::shared_ptr<const KdTree> tree;  ///< Null before the first rebuild.
    std::size_t covered = 0;             ///< Points inside `tree`.
    /// Points inserted after the tree was built; global index of
    /// pending[i] is covered + i.
    std::shared_ptr<const std::vector<geom::Vec3>> pending;
  };

  [[nodiscard]] std::shared_ptr<const State> state() const {
    return state_.load(std::memory_order_acquire);
  }
  void publish(std::shared_ptr<const State> next);
  static void merge_pending(const State& s, const geom::Vec3& query, std::size_t k,
                            std::vector<KdHit>& hits);

  std::size_t rebuild_interval_;
  std::vector<geom::Vec3> all_points_;  ///< Writer-only master copy.
  /// The swap point: a single pointer-atomic store publishes a generation.
  std::atomic<std::shared_ptr<const State>> state_;
  std::atomic<std::uint64_t> rebuilds_{0};
};

}  // namespace remgen::ml
