#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

double minkowski_distance(std::span<const double> a, std::span<const double> b, double p) {
  REMGEN_EXPECTS(a.size() == b.size());
  REMGEN_EXPECTS(p >= 1.0);
  if (p == 2.0) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  if (p == 1.0) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
    return acc;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::pow(std::abs(a[i] - b[i]), p);
  return std::pow(acc, 1.0 / p);
}

KnnRegressor::KnnRegressor(const KnnConfig& config)
    : config_(config), encoder_() {
  REMGEN_EXPECTS(config.n_neighbors > 0);
}

void KnnRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.knn.fit");
  REMGEN_COUNTER_ADD("ml.knn.fits", 1);
  encoder_ = data::FeatureEncoder::fit(train, config_.features);
  features_ = encoder_.encode_all(train);
  targets_ = data::rss_targets(train);
  fitted_ = true;
}

double KnnRegressor::predict(const data::Sample& query) const {
  REMGEN_EXPECTS(fitted_);
  REMGEN_COUNTER_ADD("ml.knn.predicts", 1);
  const std::vector<double> q = encoder_.encode(query);
  const std::size_t k = std::min(config_.n_neighbors, features_.size());

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, std::size_t>> dist(features_.size());
  for (std::size_t i = 0; i < features_.size(); ++i) {
    dist[i] = {minkowski_distance(q, features_[i], config_.minkowski_p), i};
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1), dist.end());

  if (config_.weights == KnnWeights::Uniform) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += targets_[dist[i].second];
    return acc / static_cast<double>(k);
  }

  // Distance weighting (scikit-learn semantics): an exact match dominates.
  constexpr double kExactEps = 1e-12;
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = dist[i].first;
    if (d < kExactEps) return targets_[dist[i].second];
    const double w = 1.0 / d;
    weighted += w * targets_[dist[i].second];
    weight_sum += w;
  }
  return weighted / weight_sum;
}

std::string KnnRegressor::name() const {
  return util::format("knn(k={},weights={},p={:.0f},mac_scale={:.1f})", config_.n_neighbors,
                      config_.weights == KnnWeights::Distance ? "distance" : "uniform",
                      config_.minkowski_p, config_.features.mac_onehot_scale);
}

}  // namespace remgen::ml
