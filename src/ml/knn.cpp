#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ml/distance.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

double minkowski_distance(std::span<const double> a, std::span<const double> b, double p) {
  REMGEN_EXPECTS(a.size() == b.size());
  REMGEN_EXPECTS(p >= 1.0);
  // Classify p once and compute 1/p once — the general path previously
  // re-derived 1.0 / p (and re-branched on p) inside every call site loop.
  const MinkowskiKind kind = minkowski_kind(p);
  const double pre = minkowski_pre(a.data(), b.data(), a.size(), kind, p);
  return minkowski_finish(pre, kind, 1.0 / p);
}

void save_knn_config(util::BinaryWriter& w, const KnnConfig& config) {
  w.u64(config.n_neighbors);
  w.u8(config.weights == KnnWeights::Distance ? 1 : 0);
  w.f64(config.minkowski_p);
  data::save_feature_config(w, config.features);
}

KnnConfig load_knn_config(util::BinaryReader& r) {
  KnnConfig config;
  config.n_neighbors = r.u64();
  config.weights = r.u8() != 0 ? KnnWeights::Distance : KnnWeights::Uniform;
  config.minkowski_p = r.f64();
  config.features = data::load_feature_config(r);
  return config;
}

KnnRegressor::KnnRegressor(const KnnConfig& config)
    : config_(config), encoder_() {
  REMGEN_EXPECTS(config.n_neighbors > 0);
}

void KnnRegressor::maybe_build_tree() {
  tree_.reset();
  const data::FeatureConfig& f = config_.features;
  if (f.include_position && !f.include_mac_onehot && !f.include_channel_onehot &&
      !f.normalize_position && config_.minkowski_p == 2.0) {
    // Unnormalized position-only encoding is the raw coordinates, and
    // minkowski p=2 is Vec3::distance_to — the tree query is exact. In this
    // configuration every feature row IS the coordinate triple, so the tree
    // can be rebuilt from features_ alone (fit and load share this path).
    std::vector<geom::Vec3> positions;
    positions.reserve(features_.rows());
    for (std::size_t i = 0; i < features_.rows(); ++i) {
      const double* row = features_.row_ptr(i);
      positions.push_back({row[0], row[1], row[2]});
    }
    tree_.emplace(positions);
  }
}

void KnnRegressor::rebuild_row_keys() {
  const data::FeatureConfig& f = config_.features;
  const std::size_t pos_dims = f.include_position ? 3 : 0;
  const std::size_t mac_size = f.include_mac_onehot ? encoder_.mac_vocabulary_size() : 0;
  const std::size_t ch_size = f.include_channel_onehot ? encoder_.channel_vocabulary_size() : 0;
  row_mac_.assign(features_.rows(), -1);
  row_channel_.assign(features_.rows(), -1);
  for (std::size_t i = 0; i < features_.rows(); ++i) {
    const double* row = features_.row_ptr(i);
    for (std::size_t j = 0; j < mac_size; ++j) {
      if (row[pos_dims + j] != 0.0) {
        row_mac_[i] = static_cast<int>(j);
        break;
      }
    }
    for (std::size_t j = 0; j < ch_size; ++j) {
      if (row[pos_dims + mac_size + j] != 0.0) {
        row_channel_[i] = static_cast<int>(j);
        break;
      }
    }
  }
}

void KnnRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.knn.fit");
  REMGEN_COUNTER_ADD("ml.knn.fits", 1);
  encoder_ = data::FeatureEncoder::fit(train, config_.features);
  features_ = encoder_.encode_matrix(train);
  targets_ = data::rss_targets(train);
  rebuild_row_keys();
  maybe_build_tree();
  fitted_ = true;
}

void KnnRegressor::save(util::BinaryWriter& w) const {
  REMGEN_EXPECTS(fitted_);
  save_knn_config(w, config_);
  encoder_.save(w);
  features_.save(w);
  for (const double t : targets_) w.f64(t);
}

void KnnRegressor::load(util::BinaryReader& r) {
  config_ = load_knn_config(r);
  encoder_ = data::FeatureEncoder::load(r);
  features_ = data::FeatureMatrix::load(r);
  targets_.resize(features_.rows());
  for (double& t : targets_) t = r.f64();
  rebuild_row_keys();
  maybe_build_tree();
  fitted_ = true;
}

double KnnRegressor::predict(const data::Sample& query) const {
  double out = 0.0;
  predict_batch({&query, 1}, {&out, 1});
  return out;
}

void KnnRegressor::predict_batch(std::span<const data::Sample> queries,
                                 std::span<double> out) const {
  REMGEN_EXPECTS(fitted_);
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.knn.predict");
  REMGEN_COUNTER_ADD("ml.knn.predicts", queries.size());
  const std::size_t k = std::min(config_.n_neighbors, features_.rows());
  // Distance weighting (scikit-learn semantics): an exact match dominates.
  constexpr double kExactEps = 1e-12;

  if (tree_.has_value()) {
    // One per-thread scratch (hit heap + visit stack) serves the whole batch:
    // predict_batch stays const and allocation-free under concurrent callers.
    thread_local KdQueryScratch scratch;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const std::size_t n = tree_->nearest(queries[qi].position, k, scratch);
      const std::vector<KdHit>& hits = scratch.heap;
      if (config_.weights == KnnWeights::Uniform) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) acc += targets_[hits[i].index];
        out[qi] = acc / static_cast<double>(n);
        continue;
      }
      double weighted = 0.0;
      double weight_sum = 0.0;
      bool exact = false;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = hits[i].distance;
        if (d < kExactEps) {
          out[qi] = targets_[hits[i].index];
          exact = true;
          break;
        }
        const double w = 1.0 / d;
        weighted += w * targets_[hits[i].index];
        weight_sum += w;
      }
      if (!exact) out[qi] = weighted / weight_sum;
    }
    return;
  }

  // Brute path. The whole Minkowski dispatch is hoisted out of the per-row
  // loop: p is classified once, 1/p computed once, and — because a one-hot
  // block differs from a query's block in at most two positions — each row's
  // entire block collapses to one of three precomputed penalty constants
  // (match, mismatch, or query-MAC-unknown). The inner loop is then a
  // contiguous 3-element position scan plus O(1) penalty adds, selecting
  // neighbours on the pre-distance (monotone in the true distance) and
  // deferring sqrt/pow to the at-most-k selected rows.
  const double p = config_.minkowski_p;
  const MinkowskiKind kind = minkowski_kind(p);
  const double inv_p = 1.0 / p;
  const data::FeatureConfig& f = config_.features;
  const std::size_t pos_dims = f.include_position ? 3 : 0;
  const auto phi = [kind, p](double s) {
    switch (kind) {
      case MinkowskiKind::L2: return s * s;
      case MinkowskiKind::L1: return std::abs(s);
      case MinkowskiKind::General: return std::pow(std::abs(s), p);
    }
    return s * s;
  };
  // Mismatch: the row's hot element and the query's hot element each
  // contribute phi(scale). Unknown query key: only the row's element does.
  const double mac_mismatch = f.include_mac_onehot ? 2.0 * phi(f.mac_onehot_scale) : 0.0;
  const double mac_unknown = f.include_mac_onehot ? phi(f.mac_onehot_scale) : 0.0;
  const double ch_mismatch = f.include_channel_onehot ? 2.0 * phi(1.0) : 0.0;
  const double ch_unknown = f.include_channel_onehot ? phi(1.0) : 0.0;

  thread_local std::vector<double> qrow;
  thread_local std::vector<std::pair<double, std::size_t>> pre;
  qrow.resize(encoder_.dimension());
  const std::size_t rows = features_.rows();
  pre.resize(rows);

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const data::Sample& query = queries[qi];
    encoder_.encode_into(query, qrow);
    const int q_mac = f.include_mac_onehot ? encoder_.mac_index(query.mac) : -1;
    const int q_ch = f.include_channel_onehot ? encoder_.channel_index(query.channel) : -1;
    const double* qpos = qrow.data();
    for (std::size_t i = 0; i < rows; ++i) {
      double acc = minkowski_pre(qpos, features_.row_ptr(i), pos_dims, kind, p);
      if (f.include_mac_onehot) {
        acc += q_mac < 0 ? mac_unknown : (row_mac_[i] == q_mac ? 0.0 : mac_mismatch);
      }
      if (f.include_channel_onehot) {
        acc += q_ch < 0 ? ch_unknown : (row_channel_[i] == q_ch ? 0.0 : ch_mismatch);
      }
      pre[i] = {acc, i};
    }
    std::nth_element(pre.begin(), pre.begin() + static_cast<std::ptrdiff_t>(k - 1), pre.end());

    if (config_.weights == KnnWeights::Uniform) {
      double acc = 0.0;
      for (std::size_t i = 0; i < k; ++i) acc += targets_[pre[i].second];
      out[qi] = acc / static_cast<double>(k);
      continue;
    }

    double weighted = 0.0;
    double weight_sum = 0.0;
    bool exact = false;
    for (std::size_t i = 0; i < k; ++i) {
      const double d = minkowski_finish(pre[i].first, kind, inv_p);
      if (d < kExactEps) {
        out[qi] = targets_[pre[i].second];
        exact = true;
        break;
      }
      const double w = 1.0 / d;
      weighted += w * targets_[pre[i].second];
      weight_sum += w;
    }
    if (!exact) out[qi] = weighted / weight_sum;
  }
}

std::string KnnRegressor::name() const {
  return util::format("knn(k={},weights={},p={:.0f},mac_scale={:.1f})", config_.n_neighbors,
                      config_.weights == KnnWeights::Distance ? "distance" : "uniform",
                      config_.minkowski_p, config_.features.mac_onehot_scale);
}

}  // namespace remgen::ml
