#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

double minkowski_distance(std::span<const double> a, std::span<const double> b, double p) {
  REMGEN_EXPECTS(a.size() == b.size());
  REMGEN_EXPECTS(p >= 1.0);
  if (p == 2.0) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  if (p == 1.0) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
    return acc;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::pow(std::abs(a[i] - b[i]), p);
  return std::pow(acc, 1.0 / p);
}

void save_knn_config(util::BinaryWriter& w, const KnnConfig& config) {
  w.u64(config.n_neighbors);
  w.u8(config.weights == KnnWeights::Distance ? 1 : 0);
  w.f64(config.minkowski_p);
  data::save_feature_config(w, config.features);
}

KnnConfig load_knn_config(util::BinaryReader& r) {
  KnnConfig config;
  config.n_neighbors = r.u64();
  config.weights = r.u8() != 0 ? KnnWeights::Distance : KnnWeights::Uniform;
  config.minkowski_p = r.f64();
  config.features = data::load_feature_config(r);
  return config;
}

KnnRegressor::KnnRegressor(const KnnConfig& config)
    : config_(config), encoder_() {
  REMGEN_EXPECTS(config.n_neighbors > 0);
}

void KnnRegressor::maybe_build_tree() {
  tree_.reset();
  const data::FeatureConfig& f = config_.features;
  if (f.include_position && !f.include_mac_onehot && !f.include_channel_onehot &&
      !f.normalize_position && config_.minkowski_p == 2.0) {
    // Unnormalized position-only encoding is the raw coordinates, and
    // minkowski p=2 is Vec3::distance_to — the tree query is exact. In this
    // configuration every feature row IS the coordinate triple, so the tree
    // can be rebuilt from features_ alone (fit and load share this path).
    std::vector<geom::Vec3> positions;
    positions.reserve(features_.size());
    for (const std::vector<double>& row : features_) {
      positions.push_back({row[0], row[1], row[2]});
    }
    tree_.emplace(positions);
  }
}

void KnnRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.knn.fit");
  REMGEN_COUNTER_ADD("ml.knn.fits", 1);
  encoder_ = data::FeatureEncoder::fit(train, config_.features);
  features_ = encoder_.encode_all(train);
  targets_ = data::rss_targets(train);
  maybe_build_tree();
  fitted_ = true;
}

void KnnRegressor::save(util::BinaryWriter& w) const {
  REMGEN_EXPECTS(fitted_);
  save_knn_config(w, config_);
  encoder_.save(w);
  w.u64(features_.size());
  w.u64(features_.empty() ? 0 : features_.front().size());
  for (const std::vector<double>& row : features_) {
    for (const double v : row) w.f64(v);
  }
  for (const double t : targets_) w.f64(t);
}

void KnnRegressor::load(util::BinaryReader& r) {
  config_ = load_knn_config(r);
  encoder_ = data::FeatureEncoder::load(r);
  const std::uint64_t rows = r.u64();
  const std::uint64_t dim = r.u64();
  features_.assign(rows, std::vector<double>(dim));
  for (std::vector<double>& row : features_) {
    for (double& v : row) v = r.f64();
  }
  targets_.resize(rows);
  for (double& t : targets_) t = r.f64();
  maybe_build_tree();
  fitted_ = true;
}

double KnnRegressor::predict(const data::Sample& query) const {
  REMGEN_EXPECTS(fitted_);
  REMGEN_PROFILE_PHASE("ml.knn.predict");
  REMGEN_COUNTER_ADD("ml.knn.predicts", 1);
  const std::size_t k = std::min(config_.n_neighbors, features_.size());
  // Distance weighting (scikit-learn semantics): an exact match dominates.
  constexpr double kExactEps = 1e-12;

  if (tree_.has_value()) {
    // Per-thread scratch: predict() stays const and allocation-free under
    // concurrent callers (the parallel REM build).
    thread_local std::vector<KdHit> hits;
    const std::size_t n = tree_->nearest(query.position, k, hits);
    if (config_.weights == KnnWeights::Uniform) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += targets_[hits[i].index];
      return acc / static_cast<double>(n);
    }
    double weighted = 0.0;
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = hits[i].distance;
      if (d < kExactEps) return targets_[hits[i].index];
      const double w = 1.0 / d;
      weighted += w * targets_[hits[i].index];
      weight_sum += w;
    }
    return weighted / weight_sum;
  }

  const std::vector<double> q = encoder_.encode(query);

  // Partial selection of the k smallest distances, in a per-thread buffer.
  thread_local std::vector<std::pair<double, std::size_t>> dist;
  dist.resize(features_.size());
  for (std::size_t i = 0; i < features_.size(); ++i) {
    dist[i] = {minkowski_distance(q, features_[i], config_.minkowski_p), i};
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1), dist.end());

  if (config_.weights == KnnWeights::Uniform) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += targets_[dist[i].second];
    return acc / static_cast<double>(k);
  }

  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = dist[i].first;
    if (d < kExactEps) return targets_[dist[i].second];
    const double w = 1.0 / d;
    weighted += w * targets_[dist[i].second];
    weight_sum += w;
  }
  return weighted / weight_sum;
}

std::string KnnRegressor::name() const {
  return util::format("knn(k={},weights={},p={:.0f},mac_scale={:.1f})", config_.n_neighbors,
                      config_.weights == KnnWeights::Distance ? "distance" : "uniform",
                      config_.minkowski_p, config_.features.mac_onehot_scale);
}

}  // namespace remgen::ml
