// Batched, FMA-friendly distance kernels over contiguous feature rows.
//
// The Minkowski order is dispatched ONCE per batch (not per pair, let alone
// per element): callers classify p into a MinkowskiKind up front, then run a
// branch-free accumulation loop per training row. The expensive finishing
// step (sqrt for p=2, pow(acc, 1/p) otherwise) is deferred until a distance
// is actually needed as a distance — neighbour selection happens on the raw
// accumulator, which is strictly monotone in the true distance.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace remgen::ml {

/// Hoisted Minkowski dispatch: classified once per batch/query, never inside
/// the per-row accumulation loop.
enum class MinkowskiKind { L2, L1, General };

[[nodiscard]] inline MinkowskiKind minkowski_kind(double p) {
  if (p == 2.0) return MinkowskiKind::L2;
  if (p == 1.0) return MinkowskiKind::L1;
  return MinkowskiKind::General;
}

/// Squared Euclidean distance over two contiguous rows: a single
/// multiply-add chain the compiler can unroll and vectorize. No sqrt.
[[nodiscard]] inline double squared_distance(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Minkowski pre-distance: the accumulator before the finishing root —
/// sum of squares (L2), sum of absolute differences (L1), or sum |d|^p
/// (General). Strictly monotone in the true distance, so k-nearest selection
/// can run on it directly.
[[nodiscard]] inline double minkowski_pre(const double* a, const double* b, std::size_t n,
                                          MinkowskiKind kind, double p) {
  switch (kind) {
    case MinkowskiKind::L2: return squared_distance(a, b, n);
    case MinkowskiKind::L1: {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += std::abs(a[i] - b[i]);
      return acc;
    }
    case MinkowskiKind::General: {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += std::pow(std::abs(a[i] - b[i]), p);
      return acc;
    }
  }
  return 0.0;
}

/// Finishes a pre-distance into the true Minkowski distance. `inv_p` is the
/// precomputed 1/p (only read for the General kind).
[[nodiscard]] inline double minkowski_finish(double pre, MinkowskiKind kind, double inv_p) {
  switch (kind) {
    case MinkowskiKind::L2: return std::sqrt(pre);
    case MinkowskiKind::L1: return pre;
    case MinkowskiKind::General: return std::pow(pre, inv_p);
  }
  return pre;
}

}  // namespace remgen::ml
