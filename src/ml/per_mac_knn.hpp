// Per-MAC kNN ensemble: the paper's "intuitive alternative to assigning
// samples with different MAC addresses a greater distance" — one kNN
// regressor per MAC address, each trained only on that MAC's samples with the
// feature set reduced to the (x, y, z) coordinates.
#pragma once

#include <memory>
#include <unordered_map>

#include "ml/baseline.hpp"
#include "ml/knn.hpp"

namespace remgen::ml {

/// One kNN model per MAC; falls back to the mean-per-MAC baseline when a
/// query's MAC was unseen during training.
class PerMacKnn final : public Estimator, public Serializable {
 public:
  /// `config.features` is overridden to coordinates-only internally.
  explicit PerMacKnn(const KnnConfig& config = {});

  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched delegation: runs of equal-MAC queries become one sub-span
  /// predict_batch on the owning per-MAC model (one hash lookup per run),
  /// which is exactly the REM sweep's access pattern.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::string_view serial_tag() const override { return "per-mac-knn"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

 private:
  KnnConfig config_;
  std::unordered_map<radio::MacAddress, std::unique_ptr<KnnRegressor>> models_;
  MeanPerMacBaseline fallback_;
};

}  // namespace remgen::ml
