#include "ml/metrics.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace remgen::ml {

RegressionMetrics evaluate(const Estimator& estimator, std::span<const data::Sample> test) {
  REMGEN_EXPECTS(!test.empty());
  double se = 0.0;
  double ae = 0.0;
  double mean_y = 0.0;
  for (const data::Sample& s : test) mean_y += s.rss_dbm;
  mean_y /= static_cast<double>(test.size());

  // One batched pass over the holdout set (per-query overhead hoisted); the
  // error accumulation below runs in test order, exactly as before.
  const std::vector<double> predictions = predict_all(estimator, test);

  double ss_tot = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const data::Sample& s = test[i];
    const double err = predictions[i] - s.rss_dbm;
    se += err * err;
    ae += std::abs(err);
    ss_tot += (s.rss_dbm - mean_y) * (s.rss_dbm - mean_y);
  }
  RegressionMetrics m;
  const double n = static_cast<double>(test.size());
  m.rmse = std::sqrt(se / n);
  m.mae = ae / n;
  m.r2 = ss_tot > 1e-12 ? 1.0 - se / ss_tot : 0.0;
  return m;
}

}  // namespace remgen::ml
