// Regression estimator interface for RSS prediction.
//
// Estimators consume training Samples directly (position + MAC + channel +
// RSS); feature encoding is an implementation detail of each estimator, which
// keeps per-MAC model families natural to express.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/sample.hpp"

namespace remgen::ml {

/// A trainable RSS regressor.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Trains on the given samples. May be called once per instance.
  virtual void fit(std::span<const data::Sample> train) = 0;

  /// Predicts the RSS (dBm) for a query sample (its rss_dbm field is ignored).
  /// Only valid after fit().
  [[nodiscard]] virtual double predict(const data::Sample& query) const = 0;

  /// Short human-readable model name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts every sample in `queries`.
[[nodiscard]] std::vector<double> predict_all(const Estimator& estimator,
                                              std::span<const data::Sample> queries);

}  // namespace remgen::ml
