// Regression estimator interface for RSS prediction.
//
// Estimators consume training Samples directly (position + MAC + channel +
// RSS); feature encoding is an implementation detail of each estimator, which
// keeps per-MAC model families natural to express.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/sample.hpp"

namespace remgen::ml {

/// A trainable RSS regressor.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Trains on the given samples. May be called once per instance.
  virtual void fit(std::span<const data::Sample> train) = 0;

  /// Predicts the RSS (dBm) for a query sample (its rss_dbm field is ignored).
  /// Only valid after fit().
  [[nodiscard]] virtual double predict(const data::Sample& query) const = 0;

  /// Predicts every query into `out` (same order; `out.size()` must equal
  /// `queries.size()`). Results are bit-identical to calling predict() per
  /// query: batching only hoists per-call overhead — profile phases and
  /// counters fire once per batch, scratch buffers and kernel dispatch are
  /// reused across the whole span. The base implementation loops over
  /// predict(); estimators override it with real batched kernels.
  virtual void predict_batch(std::span<const data::Sample> queries,
                             std::span<double> out) const;

  /// Short human-readable model name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts every sample in `queries`.
[[nodiscard]] std::vector<double> predict_all(const Estimator& estimator,
                                              std::span<const data::Sample> queries);

}  // namespace remgen::ml
