// Model serialisation: the snapshot store's contract with the estimators.
//
// Every estimator in the model zoo implements Serializable. save() writes
// the full fitted state (hyperparameters, learned parameters, training data
// the predictor consults) with bit-exact doubles; load() restores it so a
// loaded model predicts bit-identically to the instance that was saved.
// Acceleration structures (KD-trees) are NOT serialised — they are rebuilt
// deterministically from the stored points on load, which keeps the format
// independent of tree-node layout.
#pragma once

#include <memory>
#include <string_view>

#include "ml/estimator.hpp"
#include "radio/mac_address.hpp"
#include "util/binary_io.hpp"

namespace remgen::ml {

/// Implemented by every estimator the snapshot store can persist.
class Serializable {
 public:
  virtual ~Serializable() = default;

  /// Stable type tag written ahead of the state (e.g. "knn"); load_model
  /// dispatches on it.
  [[nodiscard]] virtual std::string_view serial_tag() const = 0;

  /// Writes the fitted state. Only valid after fit().
  virtual void save(util::BinaryWriter& w) const = 0;

  /// Restores the state written by save(); the instance behaves as fitted.
  virtual void load(util::BinaryReader& r) = 0;
};

/// Writes `model`'s tag and state. Throws std::runtime_error when the
/// estimator does not implement Serializable.
void save_model(util::BinaryWriter& w, const Estimator& model);

/// Reads a tag, constructs the matching estimator and loads its state.
/// Throws std::runtime_error on an unknown tag or corrupted state.
[[nodiscard]] std::unique_ptr<Estimator> load_model(util::BinaryReader& r);

/// Snapshot encoding of a MAC address (6 octets, network order).
void save_mac(util::BinaryWriter& w, const radio::MacAddress& mac);
[[nodiscard]] radio::MacAddress load_mac(util::BinaryReader& r);

}  // namespace remgen::ml
