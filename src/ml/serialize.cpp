#include "ml/serialize.hpp"

#include <stdexcept>

#include "ml/baseline.hpp"
#include "ml/idw.hpp"
#include "ml/knn.hpp"
#include "ml/kriging.hpp"
#include "ml/neural_net.hpp"
#include "ml/per_mac_knn.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

void save_model(util::BinaryWriter& w, const Estimator& model) {
  const auto* serializable = dynamic_cast<const Serializable*>(&model);
  if (serializable == nullptr) {
    throw std::runtime_error(
        util::format("model '{}' does not implement ml::Serializable", model.name()));
  }
  w.str(serializable->serial_tag());
  serializable->save(w);
}

std::unique_ptr<Estimator> load_model(util::BinaryReader& r) {
  const std::string tag = r.str();
  std::unique_ptr<Estimator> model;
  if (tag == "baseline-mean-per-mac") {
    model = std::make_unique<MeanPerMacBaseline>();
  } else if (tag == "knn") {
    model = std::make_unique<KnnRegressor>();
  } else if (tag == "per-mac-knn") {
    model = std::make_unique<PerMacKnn>();
  } else if (tag == "idw") {
    model = std::make_unique<IdwRegressor>();
  } else if (tag == "kriging") {
    model = std::make_unique<KrigingRegressor>();
  } else if (tag == "neural-net") {
    model = std::make_unique<NeuralNetRegressor>();
  } else {
    throw std::runtime_error(util::format("unknown model tag '{}' in snapshot", tag));
  }
  dynamic_cast<Serializable&>(*model).load(r);
  return model;
}

void save_mac(util::BinaryWriter& w, const radio::MacAddress& mac) {
  w.bytes(mac.octets().data(), 6);
}

radio::MacAddress load_mac(util::BinaryReader& r) {
  std::array<std::uint8_t, 6> octets{};
  r.bytes(octets.data(), octets.size());
  return radio::MacAddress(octets);
}

}  // namespace remgen::ml
