// Factory for the paper's estimator suite (Figure 8) plus the extension
// interpolators, so benches/examples can enumerate models uniformly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/estimator.hpp"

namespace remgen::ml {

/// The models compared in the paper's Figure 8, plus extensions.
enum class ModelKind {
  BaselineMeanPerMac,  ///< Mean per MAC (paper RMSE 4.8107 dBm).
  KnnK3Distance,       ///< kNN, k=3, distance weights, plain one-hot.
  KnnScaled16,         ///< kNN, one-hot x3, k=16 (paper's best, 4.4186 dBm).
  PerMacKnn,           ///< One kNN per MAC on coordinates only.
  NeuralNet16,         ///< 16-node sigmoid hidden layer, Adam (4.4870 dBm).
  Idw,                 ///< Extension: inverse distance weighting.
  Kriging,             ///< Extension: ordinary kriging.
};

/// All kinds, in the order the paper (then extensions) lists them.
[[nodiscard]] std::vector<ModelKind> all_model_kinds(bool include_extensions = true);

/// Constructs a fresh, unfitted estimator of the given kind with the paper's
/// tuned hyperparameters.
[[nodiscard]] std::unique_ptr<Estimator> make_model(ModelKind kind);

/// Stable identifier for reports.
[[nodiscard]] const char* model_kind_name(ModelKind kind);

}  // namespace remgen::ml
