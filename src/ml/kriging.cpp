#include "ml/kriging.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "math/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

double Variogram::gamma(double h) const {
  if (h <= 0.0) return 0.0;
  return nugget + partial_sill * (1.0 - std::exp(-h / range_m));
}

double Variogram::covariance(double h) const {
  return (nugget + partial_sill) - gamma(h);
}

Variogram fit_variogram(const std::vector<double>& lags, const std::vector<double>& gammas,
                        double sample_variance) {
  REMGEN_EXPECTS(!lags.empty());
  REMGEN_EXPECTS(lags.size() == gammas.size());
  const double sill = std::max(sample_variance, 1e-6);
  const double max_lag = *std::max_element(lags.begin(), lags.end());

  Variogram best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int ni = 0; ni <= 10; ++ni) {
    const double nugget = sill * 0.08 * ni;  // 0 .. 80% of the sill
    const double partial = std::max(sill - nugget, 1e-9);
    for (int ri = 1; ri <= 20; ++ri) {
      const double range = max_lag * 0.1 * ri;  // 10% .. 200% of max lag
      Variogram v{nugget, partial, range};
      double cost = 0.0;
      for (std::size_t i = 0; i < lags.size(); ++i) {
        const double e = v.gamma(lags[i]) - gammas[i];
        cost += e * e;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = v;
      }
    }
  }
  return best;
}

KrigingRegressor::KrigingRegressor(const KrigingConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.max_neighbors >= 2);
  REMGEN_EXPECTS(config.variogram_bins >= 2);
}

void KrigingRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  REMGEN_SPAN("ml.kriging.fit");
  REMGEN_COUNTER_ADD("ml.kriging.fits", 1);
  fallback_.fit(train);
  models_.clear();

  std::unordered_map<radio::MacAddress, std::vector<const data::Sample*>> groups;
  for (const data::Sample& s : train) groups[s.mac].push_back(&s);

  for (auto& [mac, samples] : groups) {
    if (samples.size() < config_.min_samples) continue;
    MacModel model;
    model.positions.reserve(samples.size());
    model.values.reserve(samples.size());
    double mean = 0.0;
    for (const data::Sample* s : samples) {
      model.positions.push_back(s->position);
      model.values.push_back(s->rss_dbm);
      mean += s->rss_dbm;
    }
    mean /= static_cast<double>(samples.size());
    model.mean = mean;
    double variance = 0.0;
    for (const double v : model.values) variance += (v - mean) * (v - mean);
    variance /= static_cast<double>(model.values.size());

    // Empirical semivariogram over all pairs, binned by lag.
    double max_lag = 0.0;
    for (std::size_t i = 0; i < model.positions.size(); ++i) {
      for (std::size_t j = i + 1; j < model.positions.size(); ++j) {
        max_lag = std::max(max_lag, model.positions[i].distance_to(model.positions[j]));
      }
    }
    if (max_lag <= 0.0) continue;  // all samples co-located: fallback
    const double bin_width = max_lag / static_cast<double>(config_.variogram_bins);
    std::vector<double> bin_sum(config_.variogram_bins, 0.0);
    std::vector<std::size_t> bin_count(config_.variogram_bins, 0);
    for (std::size_t i = 0; i < model.positions.size(); ++i) {
      for (std::size_t j = i + 1; j < model.positions.size(); ++j) {
        const double h = model.positions[i].distance_to(model.positions[j]);
        auto bin = static_cast<std::size_t>(h / bin_width);
        if (bin >= config_.variogram_bins) bin = config_.variogram_bins - 1;
        const double dv = model.values[i] - model.values[j];
        bin_sum[bin] += 0.5 * dv * dv;
        ++bin_count[bin];
      }
    }
    std::vector<double> lags;
    std::vector<double> gammas;
    for (std::size_t b = 0; b < config_.variogram_bins; ++b) {
      if (bin_count[b] == 0) continue;
      lags.push_back((static_cast<double>(b) + 0.5) * bin_width);
      gammas.push_back(bin_sum[b] / static_cast<double>(bin_count[b]));
    }
    if (lags.empty()) continue;
    model.variogram = fit_variogram(lags, gammas, variance);
    model.tree = std::make_unique<KdTree>(model.positions);
    models_[mac] = std::move(model);
  }
}

KrigingRegressor::Prediction KrigingRegressor::krige(const MacModel& model,
                                                     const geom::Vec3& at,
                                                     KdQueryScratch& scratch) const {
  const std::size_t n = model.tree->nearest(at, config_.max_neighbors, scratch);
  const std::vector<KdHit>& hits = scratch.heap;
  REMGEN_EXPECTS(n >= 1);
  if (n == 1) return {model.values[hits[0].index], std::sqrt(model.variogram.nugget)};

  // Ordinary kriging system with a Lagrange multiplier:
  //   [C  1] [w]   [c0]
  //   [1' 0] [mu] = [1 ]
  math::Matrix a(n + 1, n + 1);
  math::Matrix b(n + 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double h = model.positions[hits[i].index].distance_to(model.positions[hits[j].index]);
      a(i, j) = model.variogram.covariance(h);
    }
    // A small diagonal jitter keeps the system solvable with duplicate points.
    a(i, i) += 1e-9;
    a(i, n) = 1.0;
    a(n, i) = 1.0;
    b(i, 0) = model.variogram.covariance(hits[i].distance);
  }
  a(n, n) = 0.0;
  b(n, 0) = 1.0;

  math::Matrix w(n + 1, 1);
  try {
    w = math::lu_solve(std::move(a), std::move(b));
  } catch (const std::exception&) {
    return {model.mean, std::sqrt(model.variogram.nugget + model.variogram.partial_sill)};
  }

  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) value += w(i, 0) * model.values[hits[i].index];

  // Kriging variance: sigma^2 = C(0) - sum w_i c0_i - mu.
  const double c00 = model.variogram.covariance(0.0);
  double var = c00 - w(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    var -= w(i, 0) * model.variogram.covariance(hits[i].distance);
  }
  return {value, std::sqrt(std::max(var, 0.0))};
}

void KrigingRegressor::predict_with_sigma_batch(std::span<const data::Sample> queries,
                                                std::span<Prediction> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.kriging.predict");
  REMGEN_COUNTER_ADD("ml.kriging.predicts", queries.size());
  // Per-thread scratch keeps the dense-REM prediction loop allocation-free
  // and safe for concurrent callers; runs of equal-MAC queries (the sweep's
  // access pattern) reuse one model lookup.
  thread_local KdQueryScratch scratch;
  const MacModel* model = nullptr;
  const radio::MacAddress* run_mac = nullptr;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const data::Sample& query = queries[qi];
    if (run_mac == nullptr || !(query.mac == *run_mac)) {
      const auto it = models_.find(query.mac);
      model = it == models_.end() ? nullptr : &it->second;
      run_mac = &query.mac;
    }
    out[qi] = model == nullptr ? Prediction{fallback_.predict(query), 0.0}
                               : krige(*model, query.position, scratch);
  }
}

KrigingRegressor::Prediction KrigingRegressor::predict_with_sigma(
    const data::Sample& query) const {
  Prediction out{0.0, 0.0};
  predict_with_sigma_batch({&query, 1}, {&out, 1});
  return out;
}

double KrigingRegressor::predict(const data::Sample& query) const {
  return predict_with_sigma(query).value;
}

void KrigingRegressor::predict_batch(std::span<const data::Sample> queries,
                                     std::span<double> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  thread_local std::vector<Prediction> predictions;
  predictions.resize(queries.size());
  predict_with_sigma_batch(queries, predictions);
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = predictions[i].value;
}

void KrigingRegressor::save(util::BinaryWriter& w) const {
  w.u64(config_.max_neighbors);
  w.u64(config_.variogram_bins);
  w.u64(config_.min_samples);
  fallback_.save(w);
  // MAC-sorted so repeated saves of the same model are byte-identical.
  std::map<radio::MacAddress, const MacModel*> sorted;
  for (const auto& [mac, model] : models_) sorted[mac] = &model;
  w.u64(sorted.size());
  for (const auto& [mac, model] : sorted) {
    save_mac(w, mac);
    w.f64(model->mean);
    w.f64(model->variogram.nugget);
    w.f64(model->variogram.partial_sill);
    w.f64(model->variogram.range_m);
    w.u64(model->positions.size());
    for (std::size_t i = 0; i < model->positions.size(); ++i) {
      w.f64(model->positions[i].x);
      w.f64(model->positions[i].y);
      w.f64(model->positions[i].z);
      w.f64(model->values[i]);
    }
  }
}

void KrigingRegressor::load(util::BinaryReader& r) {
  config_.max_neighbors = r.u64();
  config_.variogram_bins = r.u64();
  config_.min_samples = r.u64();
  fallback_.load(r);
  models_.clear();
  const std::uint64_t macs = r.u64();
  for (std::uint64_t i = 0; i < macs; ++i) {
    const radio::MacAddress mac = load_mac(r);
    MacModel model;
    model.mean = r.f64();
    model.variogram.nugget = r.f64();
    model.variogram.partial_sill = r.f64();
    model.variogram.range_m = r.f64();
    const std::uint64_t n = r.u64();
    model.positions.resize(n);
    model.values.resize(n);
    for (std::uint64_t j = 0; j < n; ++j) {
      model.positions[j].x = r.f64();
      model.positions[j].y = r.f64();
      model.positions[j].z = r.f64();
      model.values[j] = r.f64();
    }
    model.tree = std::make_unique<KdTree>(model.positions);
    models_[mac] = std::move(model);
  }
}

std::optional<Variogram> KrigingRegressor::variogram_for(const radio::MacAddress& mac) const {
  const auto it = models_.find(mac);
  if (it == models_.end()) return std::nullopt;
  return it->second.variogram;
}

std::string KrigingRegressor::name() const {
  return util::format("kriging(neighbors={},bins={})", config_.max_neighbors,
                      config_.variogram_bins);
}

}  // namespace remgen::ml
