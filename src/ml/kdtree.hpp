// KD-tree over 3D points: an ablation/acceleration structure for the
// coordinates-only per-MAC kNN and for dense REM raster queries (the paper's
// brute-force scikit-learn kNN is O(n) per query; the tree makes raster
// generation tractable at fine resolutions).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec3.hpp"

namespace remgen::ml {

/// Nearest-neighbour hit.
struct KdHit {
  std::size_t index;   ///< Index into the point set given at build time.
  double distance;     ///< Euclidean distance to the query.
};

/// Reusable per-thread query state: the candidate heap plus the explicit
/// visit stack of the iterative traversal. One scratch serves a whole batch
/// of queries — neither buffer is reallocated between calls once warm.
struct KdQueryScratch {
  std::vector<KdHit> heap;

  /// A deferred far-subtree visit: re-checked against the heap when popped.
  struct Pending {
    int node;
    double plane_distance;  ///< |query - split plane| along the node's axis.
  };
  std::vector<Pending> stack;
};

/// Static KD-tree over a fixed point set.
class KdTree {
 public:
  /// Builds the tree (O(n log n)). Point indices refer to `points` order.
  explicit KdTree(std::span<const geom::Vec3> points);

  /// The k nearest points to `query`, ordered by ascending distance.
  /// Returns fewer than k hits if the point set is smaller.
  [[nodiscard]] std::vector<KdHit> nearest(const geom::Vec3& query, std::size_t k) const;

  /// Allocation-free variant: fills `scratch` with the hits (same contents
  /// and order as nearest()) and returns the hit count. `scratch` is cleared
  /// first; its capacity persists across calls, so hot prediction loops that
  /// reuse one buffer per thread stop allocating per query.
  std::size_t nearest(const geom::Vec3& query, std::size_t k,
                      std::vector<KdHit>& scratch) const;

  /// Batched-query variant: iterative traversal (no recursion) whose visit
  /// stack AND hit heap live in `scratch`, so a row of queries reuses both.
  /// Hits land in scratch.heap sorted by ascending distance; returns the hit
  /// count. Results are bit-identical to the other nearest() overloads.
  std::size_t nearest(const geom::Vec3& query, std::size_t k, KdQueryScratch& scratch) const;

  /// All points within `radius` of `query`, ordered by ascending distance.
  [[nodiscard]] std::vector<KdHit> within(const geom::Vec3& query, double radius) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Node {
    std::size_t point = 0;     ///< Index into points_.
    int axis = 0;
    int left = -1;
    int right = -1;
  };

  int build(std::vector<std::size_t>& indices, std::size_t begin, std::size_t end, int depth);
  void search_knn(int node, const geom::Vec3& query, std::size_t k,
                  std::vector<KdHit>& heap) const;
  void search_radius(int node, const geom::Vec3& query, double radius,
                     std::vector<KdHit>& hits) const;

  std::vector<geom::Vec3> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace remgen::ml
