// Exhaustive hyperparameter grid search with a held-out validation split —
// the tuning procedure the paper uses for its kNN and NN configurations
// ("the validation set was taken out of the training set").
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "exec/parallel.hpp"
#include "ml/estimator.hpp"
#include "ml/metrics.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace remgen::ml {

/// One evaluated grid point.
template <typename Config>
struct GridPoint {
  Config config;
  double validation_rmse = 0.0;
};

/// Grid-search outcome: the winning config and every evaluated point.
template <typename Config>
struct GridSearchResult {
  Config best;
  double best_rmse = std::numeric_limits<double>::infinity();
  std::vector<GridPoint<Config>> evaluated;
};

/// Evaluates `candidates` by fitting `make_estimator(config)` on a
/// train/validation split of `train` (validation carved out of the training
/// set) and returns the config minimising validation RMSE.
///
/// `make_estimator` must return a std::unique_ptr<Estimator>, and must be
/// safe to call concurrently (each call builds an independent estimator):
/// candidates are evaluated in parallel across exec::thread_count() threads.
/// `evaluated` keeps candidate order and `best` is the first minimum in that
/// order, so the result is identical at every thread count.
template <typename Config, typename Builder>
[[nodiscard]] GridSearchResult<Config> grid_search(const std::vector<Config>& candidates,
                                                   Builder&& make_estimator,
                                                   const std::vector<data::Sample>& train,
                                                   double validation_fraction, util::Rng& rng) {
  REMGEN_EXPECTS(!candidates.empty());
  REMGEN_EXPECTS(validation_fraction > 0.0 && validation_fraction < 1.0);

  const data::Dataset dataset{std::vector<data::Sample>(train)};
  const data::DatasetSplit split = dataset.split(1.0 - validation_fraction, rng);
  REMGEN_EXPECTS(!split.train.empty() && !split.test.empty());

  GridSearchResult<Config> result;
  // A candidate evaluation (fit + batched holdout pass) costs milliseconds,
  // so the cost heuristic resolves to fine-grained chunks — candidates are
  // coarse work items, unlike the REM sweep's cheap per-voxel predicts.
  result.evaluated = exec::parallel_map(
      candidates.size(),
      [&](std::size_t i) {
        const std::unique_ptr<Estimator> estimator = make_estimator(candidates[i]);
        estimator->fit(split.train);
        return GridPoint<Config>{candidates[i], evaluate(*estimator, split.test).rmse};
      },
      exec::chunk_for_cost(candidates.size(), /*est_item_us=*/5000.0), "ml.grid_search");
  // Sequential reduction over the ordered points reproduces the sequential
  // tie-break: strictly-better RMSE wins, so the earliest minimum is `best`.
  for (const GridPoint<Config>& point : result.evaluated) {
    if (point.validation_rmse < result.best_rmse) {
      result.best_rmse = point.validation_rmse;
      result.best = point.config;
    }
  }
  return result;
}

}  // namespace remgen::ml
