#include "ml/baseline.hpp"

#include "util/contracts.hpp"

namespace remgen::ml {

void MeanPerMacBaseline::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  std::unordered_map<radio::MacAddress, std::pair<double, std::size_t>> acc;
  double total = 0.0;
  for (const data::Sample& s : train) {
    auto& [sum, count] = acc[s.mac];
    sum += s.rss_dbm;
    ++count;
    total += s.rss_dbm;
  }
  mean_per_mac_.clear();
  for (const auto& [mac, sum_count] : acc) {
    mean_per_mac_[mac] = sum_count.first / static_cast<double>(sum_count.second);
  }
  global_mean_ = total / static_cast<double>(train.size());
}

double MeanPerMacBaseline::predict(const data::Sample& query) const {
  const auto it = mean_per_mac_.find(query.mac);
  return it == mean_per_mac_.end() ? global_mean_ : it->second;
}

}  // namespace remgen::ml
