#include "ml/baseline.hpp"

#include <map>

#include "obs/profile.hpp"
#include "util/contracts.hpp"

namespace remgen::ml {

void MeanPerMacBaseline::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  std::unordered_map<radio::MacAddress, std::pair<double, std::size_t>> acc;
  double total = 0.0;
  for (const data::Sample& s : train) {
    auto& [sum, count] = acc[s.mac];
    sum += s.rss_dbm;
    ++count;
    total += s.rss_dbm;
  }
  mean_per_mac_.clear();
  for (const auto& [mac, sum_count] : acc) {
    mean_per_mac_[mac] = sum_count.first / static_cast<double>(sum_count.second);
  }
  global_mean_ = total / static_cast<double>(train.size());
}

double MeanPerMacBaseline::predict(const data::Sample& query) const {
  double out = 0.0;
  predict_batch({&query, 1}, {&out, 1});
  return out;
}

void MeanPerMacBaseline::predict_batch(std::span<const data::Sample> queries,
                                       std::span<double> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.baseline.predict");
  double mean = global_mean_;
  const radio::MacAddress* run_mac = nullptr;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const data::Sample& query = queries[qi];
    if (run_mac == nullptr || !(query.mac == *run_mac)) {
      const auto it = mean_per_mac_.find(query.mac);
      mean = it == mean_per_mac_.end() ? global_mean_ : it->second;
      run_mac = &query.mac;
    }
    out[qi] = mean;
  }
}

void MeanPerMacBaseline::save(util::BinaryWriter& w) const {
  w.f64(global_mean_);
  // MAC-sorted so repeated saves of the same model are byte-identical.
  std::map<radio::MacAddress, double> sorted(mean_per_mac_.begin(), mean_per_mac_.end());
  w.u64(sorted.size());
  for (const auto& [mac, mean] : sorted) {
    save_mac(w, mac);
    w.f64(mean);
  }
}

void MeanPerMacBaseline::load(util::BinaryReader& r) {
  global_mean_ = r.f64();
  mean_per_mac_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const radio::MacAddress mac = load_mac(r);
    mean_per_mac_[mac] = r.f64();
  }
}

}  // namespace remgen::ml
