// Regression evaluation metrics.
#pragma once

#include <span>

#include "data/sample.hpp"
#include "ml/estimator.hpp"

namespace remgen::ml {

/// Standard regression metrics on a held-out set.
struct RegressionMetrics {
  double rmse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination vs the test-set mean.
};

/// Evaluates a fitted estimator on `test` (must be non-empty).
[[nodiscard]] RegressionMetrics evaluate(const Estimator& estimator,
                                         std::span<const data::Sample> test);

}  // namespace remgen::ml
