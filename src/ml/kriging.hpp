// Ordinary kriging (extension beyond the paper's estimator set).
//
// Kriging is the canonical geostatistical interpolator for radio
// environmental maps: it models the RSS field per transmitter as a
// second-order stationary random field, fits an exponential semivariogram to
// the training data, and predicts with best-linear-unbiased weights solved
// from the kriging system. One model is fitted per MAC address on the
// (x, y, z) coordinates; prediction additionally exposes the kriging variance
// used by the REM to report uncertainty.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "ml/baseline.hpp"
#include "ml/estimator.hpp"
#include "ml/kdtree.hpp"
#include "ml/serialize.hpp"

namespace remgen::ml {

/// Exponential semivariogram: gamma(h) = nugget + partial_sill * (1 - exp(-h / range)).
struct Variogram {
  double nugget = 0.0;
  double partial_sill = 1.0;
  double range_m = 1.0;

  /// Semivariance at lag h (>= 0).
  [[nodiscard]] double gamma(double h) const;

  /// Covariance at lag h: C(h) = sill_total - gamma(h).
  [[nodiscard]] double covariance(double h) const;
};

/// Fits an exponential variogram to empirical (lag, semivariance) pairs by a
/// coarse grid search over (nugget, range) with the sill set to the sample
/// variance. `lags`/`gammas` must be equal-sized and non-empty.
[[nodiscard]] Variogram fit_variogram(const std::vector<double>& lags,
                                      const std::vector<double>& gammas, double sample_variance);

/// Kriging hyperparameters.
struct KrigingConfig {
  std::size_t max_neighbors = 24;  ///< Local kriging neighbourhood size.
  std::size_t variogram_bins = 12;
  std::size_t min_samples = 4;     ///< Below this, fall back to the MAC mean.
};

/// Per-MAC ordinary kriging with mean-per-MAC fallback.
class KrigingRegressor final : public Estimator, public Serializable {
 public:
  explicit KrigingRegressor(const KrigingConfig& config = {});

  void fit(std::span<const data::Sample> train) override;
  [[nodiscard]] double predict(const data::Sample& query) const override;
  /// Batched kernel: per-MAC model lookup is hoisted across runs of
  /// equal-MAC queries, the KD-tree scratch is batch-reused, and the profile
  /// phase/counter fire once per batch.
  void predict_batch(std::span<const data::Sample> queries,
                     std::span<double> out) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::string_view serial_tag() const override { return "kriging"; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  /// Prediction plus kriging standard deviation (uncertainty). The deviation
  /// is 0 for fallback predictions.
  struct Prediction {
    double value;
    double sigma;
  };
  [[nodiscard]] Prediction predict_with_sigma(const data::Sample& query) const;

  /// Batched variant of predict_with_sigma() — the REM builder's uncertainty
  /// sweep path. `out.size()` must equal `queries.size()`; results are
  /// bit-identical to the scalar call.
  void predict_with_sigma_batch(std::span<const data::Sample> queries,
                                std::span<Prediction> out) const;

  /// Fitted variogram for a MAC (empty if the MAC fell back to the mean).
  [[nodiscard]] std::optional<Variogram> variogram_for(const radio::MacAddress& mac) const;

 private:
  struct MacModel {
    std::vector<geom::Vec3> positions;
    std::vector<double> values;
    double mean = 0.0;
    Variogram variogram;
    std::unique_ptr<KdTree> tree;
  };

  [[nodiscard]] Prediction krige(const MacModel& model, const geom::Vec3& at,
                                 KdQueryScratch& scratch) const;

  KrigingConfig config_;
  std::unordered_map<radio::MacAddress, MacModel> models_;
  MeanPerMacBaseline fallback_;
};

}  // namespace remgen::ml
