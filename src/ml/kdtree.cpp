#include "ml/kdtree.hpp"

#include <algorithm>
#include <cmath>

#include "obs/profile.hpp"
#include "util/contracts.hpp"

namespace remgen::ml {

namespace {
double axis_value(const geom::Vec3& p, int axis) {
  switch (axis) {
    case 0: return p.x;
    case 1: return p.y;
    default: return p.z;
  }
}
}  // namespace

KdTree::KdTree(std::span<const geom::Vec3> points)
    : points_(points.begin(), points.end()) {
  if (points_.empty()) return;
  std::vector<std::size_t> indices(points_.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  nodes_.reserve(points_.size());
  root_ = build(indices, 0, indices.size(), 0);
}

int KdTree::build(std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                  int depth) {
  if (begin >= end) return -1;
  const int axis = depth % 3;
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                   indices.begin() + static_cast<std::ptrdiff_t>(mid),
                   indices.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return axis_value(points_[a], axis) < axis_value(points_[b], axis);
                   });
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back({indices[mid], axis, -1, -1});
  const int left = build(indices, begin, mid, depth + 1);
  const int right = build(indices, mid + 1, end, depth + 1);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

void KdTree::search_knn(int node, const geom::Vec3& query, std::size_t k,
                        std::vector<KdHit>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const geom::Vec3& p = points_[n.point];
  const double d = p.distance_to(query);

  auto worse = [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; };
  if (heap.size() < k) {
    heap.push_back({n.point, d});
    std::push_heap(heap.begin(), heap.end(), worse);
  } else if (d < heap.front().distance) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    heap.back() = {n.point, d};
    std::push_heap(heap.begin(), heap.end(), worse);
  }

  const double diff = axis_value(query, n.axis) - axis_value(p, n.axis);
  const int near = diff <= 0.0 ? n.left : n.right;
  const int far = diff <= 0.0 ? n.right : n.left;
  search_knn(near, query, k, heap);
  if (heap.size() < k || std::abs(diff) < heap.front().distance) {
    search_knn(far, query, k, heap);
  }
}

std::size_t KdTree::nearest(const geom::Vec3& query, std::size_t k,
                            std::vector<KdHit>& scratch) const {
  REMGEN_EXPECTS(k > 0);
  REMGEN_PROFILE_PHASE("ml.kdtree.nearest");
  scratch.clear();
  scratch.reserve(k + 1);
  search_knn(root_, query, k, scratch);
  std::sort(scratch.begin(), scratch.end(),
            [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; });
  return scratch.size();
}

std::vector<KdHit> KdTree::nearest(const geom::Vec3& query, std::size_t k) const {
  std::vector<KdHit> heap;
  nearest(query, k, heap);
  return heap;
}

std::size_t KdTree::nearest(const geom::Vec3& query, std::size_t k,
                            KdQueryScratch& scratch) const {
  REMGEN_EXPECTS(k > 0);
  auto& heap = scratch.heap;
  auto& stack = scratch.stack;
  heap.clear();
  stack.clear();
  heap.reserve(k + 1);

  // Iterative twin of search_knn(). The near child is followed immediately;
  // the far child is deferred on the stack with its splitting-plane distance.
  // Popping LIFO reproduces the recursion's unwind order exactly, and the
  // prune bound is re-checked at pop time — the same moment the recursion
  // checks it (after the near subtree completes) — so heap contents, tie
  // handling, and therefore results are bit-identical to the recursive path.
  auto worse = [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; };
  int node = root_;
  while (true) {
    while (node >= 0) {
      const Node& n = nodes_[static_cast<std::size_t>(node)];
      const geom::Vec3& p = points_[n.point];
      const double d = p.distance_to(query);
      if (heap.size() < k) {
        heap.push_back({n.point, d});
        std::push_heap(heap.begin(), heap.end(), worse);
      } else if (d < heap.front().distance) {
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.back() = {n.point, d};
        std::push_heap(heap.begin(), heap.end(), worse);
      }
      const double diff = axis_value(query, n.axis) - axis_value(p, n.axis);
      const int near = diff <= 0.0 ? n.left : n.right;
      const int far = diff <= 0.0 ? n.right : n.left;
      if (far >= 0) stack.push_back({far, std::abs(diff)});
      node = near;
    }
    node = -1;
    while (!stack.empty()) {
      const KdQueryScratch::Pending pending = stack.back();
      stack.pop_back();
      if (heap.size() < k || pending.plane_distance < heap.front().distance) {
        node = pending.node;
        break;
      }
    }
    if (node < 0) break;
  }
  std::sort(heap.begin(), heap.end(), worse);
  return heap.size();
}

void KdTree::search_radius(int node, const geom::Vec3& query, double radius,
                           std::vector<KdHit>& hits) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const geom::Vec3& p = points_[n.point];
  const double d = p.distance_to(query);
  if (d <= radius) hits.push_back({n.point, d});

  const double diff = axis_value(query, n.axis) - axis_value(p, n.axis);
  const int near = diff <= 0.0 ? n.left : n.right;
  const int far = diff <= 0.0 ? n.right : n.left;
  search_radius(near, query, radius, hits);
  if (std::abs(diff) <= radius) search_radius(far, query, radius, hits);
}

std::vector<KdHit> KdTree::within(const geom::Vec3& query, double radius) const {
  REMGEN_EXPECTS(radius >= 0.0);
  std::vector<KdHit> hits;
  search_radius(root_, query, radius, hits);
  std::sort(hits.begin(), hits.end(),
            [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; });
  return hits;
}

}  // namespace remgen::ml
