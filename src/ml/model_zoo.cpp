#include "ml/model_zoo.hpp"

#include "ml/baseline.hpp"
#include "ml/idw.hpp"
#include "ml/knn.hpp"
#include "ml/kriging.hpp"
#include "ml/neural_net.hpp"
#include "ml/per_mac_knn.hpp"

namespace remgen::ml {

std::vector<ModelKind> all_model_kinds(bool include_extensions) {
  std::vector<ModelKind> kinds{ModelKind::BaselineMeanPerMac, ModelKind::KnnK3Distance,
                               ModelKind::KnnScaled16, ModelKind::PerMacKnn,
                               ModelKind::NeuralNet16};
  if (include_extensions) {
    kinds.push_back(ModelKind::Idw);
    kinds.push_back(ModelKind::Kriging);
  }
  return kinds;
}

std::unique_ptr<Estimator> make_model(ModelKind kind) {
  switch (kind) {
    case ModelKind::BaselineMeanPerMac:
      return std::make_unique<MeanPerMacBaseline>();
    case ModelKind::KnnK3Distance: {
      KnnConfig config;
      config.n_neighbors = 3;
      config.weights = KnnWeights::Distance;
      config.minkowski_p = 2.0;
      config.features.mac_onehot_scale = 1.0;
      return std::make_unique<KnnRegressor>(config);
    }
    case ModelKind::KnnScaled16: {
      KnnConfig config;
      config.n_neighbors = 16;
      config.weights = KnnWeights::Distance;
      config.minkowski_p = 2.0;
      config.features.mac_onehot_scale = 3.0;
      return std::make_unique<KnnRegressor>(config);
    }
    case ModelKind::PerMacKnn: {
      KnnConfig config;
      config.n_neighbors = 3;
      config.weights = KnnWeights::Distance;
      config.minkowski_p = 2.0;
      return std::make_unique<PerMacKnn>(config);
    }
    case ModelKind::NeuralNet16: {
      NeuralNetConfig config;  // defaults are the paper's optimized network
      return std::make_unique<NeuralNetRegressor>(config);
    }
    case ModelKind::Idw:
      return std::make_unique<IdwRegressor>(IdwConfig{.power = 2.0, .max_neighbors = 16});
    case ModelKind::Kriging:
      return std::make_unique<KrigingRegressor>();
  }
  return nullptr;
}

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::BaselineMeanPerMac: return "baseline-mean-per-mac";
    case ModelKind::KnnK3Distance: return "knn-k3-distance";
    case ModelKind::KnnScaled16: return "knn-onehot-x3-k16";
    case ModelKind::PerMacKnn: return "per-mac-knn";
    case ModelKind::NeuralNet16: return "neural-net-16";
    case ModelKind::Idw: return "idw";
    case ModelKind::Kriging: return "kriging";
  }
  return "?";
}

}  // namespace remgen::ml
