#include "ml/estimator.hpp"

#include "util/contracts.hpp"

namespace remgen::ml {

void Estimator::predict_batch(std::span<const data::Sample> queries,
                              std::span<double> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = predict(queries[i]);
}

std::vector<double> predict_all(const Estimator& estimator,
                                std::span<const data::Sample> queries) {
  std::vector<double> out(queries.size(), 0.0);
  estimator.predict_batch(queries, out);
  return out;
}

}  // namespace remgen::ml
