#include "ml/estimator.hpp"

namespace remgen::ml {

std::vector<double> predict_all(const Estimator& estimator,
                                std::span<const data::Sample> queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const data::Sample& q : queries) out.push_back(estimator.predict(q));
  return out;
}

}  // namespace remgen::ml
