#include "ml/idw.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

IdwRegressor::IdwRegressor(const IdwConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.power > 0.0);
}

void IdwRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  fallback_.fit(train);
  per_mac_.clear();
  for (const data::Sample& s : train) {
    MacData& d = per_mac_[s.mac];
    d.positions.push_back(s.position);
    d.values.push_back(s.rss_dbm);
  }
}

double IdwRegressor::predict(const data::Sample& query) const {
  const auto it = per_mac_.find(query.mac);
  if (it == per_mac_.end()) return fallback_.predict(query);
  const MacData& d = it->second;

  // Optionally restrict to the nearest max_neighbors samples.
  std::vector<std::pair<double, std::size_t>> dist(d.positions.size());
  for (std::size_t i = 0; i < d.positions.size(); ++i) {
    dist[i] = {d.positions[i].distance_to(query.position), i};
  }
  std::size_t use = dist.size();
  if (config_.max_neighbors > 0 && config_.max_neighbors < use) {
    use = config_.max_neighbors;
    std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(use - 1),
                     dist.end());
  }

  constexpr double kExactEps = 1e-9;
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < use; ++i) {
    const auto [dd, idx] = dist[i];
    if (dd < kExactEps) return d.values[idx];
    const double w = 1.0 / std::pow(dd, config_.power);
    weighted += w * d.values[idx];
    weight_sum += w;
  }
  return weighted / weight_sum;
}

std::string IdwRegressor::name() const {
  return util::format("idw(p={:.1f},max_n={})", config_.power, config_.max_neighbors);
}

}  // namespace remgen::ml
