#include "ml/idw.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/profile.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

IdwRegressor::IdwRegressor(const IdwConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.power > 0.0);
}

void IdwRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  fallback_.fit(train);
  per_mac_.clear();
  for (const data::Sample& s : train) {
    MacData& d = per_mac_[s.mac];
    d.positions.push_back(s.position);
    d.values.push_back(s.rss_dbm);
  }
  if (config_.max_neighbors > 0) {
    for (auto& [mac, d] : per_mac_) d.tree.emplace(d.positions);
  }
}

double IdwRegressor::predict(const data::Sample& query) const {
  REMGEN_PROFILE_PHASE("ml.idw.predict");
  const auto it = per_mac_.find(query.mac);
  if (it == per_mac_.end()) return fallback_.predict(query);
  const MacData& d = it->second;
  constexpr double kExactEps = 1e-9;

  if (d.tree.has_value()) {
    // Restricted to the nearest max_neighbors samples via the tree; the
    // scratch buffer is per-thread for concurrent predict() callers.
    thread_local std::vector<KdHit> hits;
    const std::size_t n = d.tree->nearest(query.position, config_.max_neighbors, hits);
    double weighted = 0.0;
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dd = hits[i].distance;
      if (dd < kExactEps) return d.values[hits[i].index];
      const double w = 1.0 / std::pow(dd, config_.power);
      weighted += w * d.values[hits[i].index];
      weight_sum += w;
    }
    return weighted / weight_sum;
  }

  // All samples of the MAC contribute: a single allocation-free pass.
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < d.positions.size(); ++i) {
    const double dd = d.positions[i].distance_to(query.position);
    if (dd < kExactEps) return d.values[i];
    const double w = 1.0 / std::pow(dd, config_.power);
    weighted += w * d.values[i];
    weight_sum += w;
  }
  return weighted / weight_sum;
}

void IdwRegressor::save(util::BinaryWriter& w) const {
  w.f64(config_.power);
  w.u64(config_.max_neighbors);
  fallback_.save(w);
  // MAC-sorted so repeated saves of the same model are byte-identical.
  std::map<radio::MacAddress, const MacData*> sorted;
  for (const auto& [mac, d] : per_mac_) sorted[mac] = &d;
  w.u64(sorted.size());
  for (const auto& [mac, d] : sorted) {
    save_mac(w, mac);
    w.u64(d->positions.size());
    for (std::size_t i = 0; i < d->positions.size(); ++i) {
      w.f64(d->positions[i].x);
      w.f64(d->positions[i].y);
      w.f64(d->positions[i].z);
      w.f64(d->values[i]);
    }
  }
}

void IdwRegressor::load(util::BinaryReader& r) {
  config_.power = r.f64();
  config_.max_neighbors = r.u64();
  fallback_.load(r);
  per_mac_.clear();
  const std::uint64_t macs = r.u64();
  for (std::uint64_t i = 0; i < macs; ++i) {
    const radio::MacAddress mac = load_mac(r);
    MacData& d = per_mac_[mac];
    const std::uint64_t n = r.u64();
    d.positions.resize(n);
    d.values.resize(n);
    for (std::uint64_t j = 0; j < n; ++j) {
      d.positions[j].x = r.f64();
      d.positions[j].y = r.f64();
      d.positions[j].z = r.f64();
      d.values[j] = r.f64();
    }
    if (config_.max_neighbors > 0) d.tree.emplace(d.positions);
  }
}

std::string IdwRegressor::name() const {
  return util::format("idw(p={:.1f},max_n={})", config_.power, config_.max_neighbors);
}

}  // namespace remgen::ml
