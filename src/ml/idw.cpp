#include "ml/idw.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/profile.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::ml {

IdwRegressor::IdwRegressor(const IdwConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.power > 0.0);
}

void IdwRegressor::fit(std::span<const data::Sample> train) {
  REMGEN_EXPECTS(!train.empty());
  fallback_.fit(train);
  per_mac_.clear();
  for (const data::Sample& s : train) {
    MacData& d = per_mac_[s.mac];
    d.positions.push_back(s.position);
    d.values.push_back(s.rss_dbm);
  }
  if (config_.max_neighbors > 0) {
    for (auto& [mac, d] : per_mac_) d.tree.emplace(d.positions);
  }
}

double IdwRegressor::predict(const data::Sample& query) const {
  double out = 0.0;
  predict_batch({&query, 1}, {&out, 1});
  return out;
}

void IdwRegressor::predict_batch(std::span<const data::Sample> queries,
                                 std::span<double> out) const {
  REMGEN_EXPECTS(queries.size() == out.size());
  if (queries.empty()) return;
  REMGEN_PROFILE_PHASE("ml.idw.predict");
  constexpr double kExactEps = 1e-9;

  // Weight-exponent dispatch, classified once per batch. The common powers
  // skip std::pow entirely (pow(d, 2) and pow(d, 1) round to d*d and d for
  // finite d, so results are unchanged).
  enum class PowKind { Two, One, General };
  const double power = config_.power;
  const PowKind pk =
      power == 2.0 ? PowKind::Two : (power == 1.0 ? PowKind::One : PowKind::General);
  const auto weight_of = [pk, power](double dd) {
    switch (pk) {
      case PowKind::Two: return 1.0 / (dd * dd);
      case PowKind::One: return 1.0 / dd;
      case PowKind::General: return 1.0 / std::pow(dd, power);
    }
    return 1.0 / (dd * dd);
  };

  thread_local KdQueryScratch scratch;
  // Runs of equal-MAC queries (the REM sweep's access pattern) reuse one
  // per-MAC hash lookup.
  const MacData* d = nullptr;
  const radio::MacAddress* run_mac = nullptr;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const data::Sample& query = queries[qi];
    if (run_mac == nullptr || !(query.mac == *run_mac)) {
      const auto it = per_mac_.find(query.mac);
      d = it == per_mac_.end() ? nullptr : &it->second;
      run_mac = &query.mac;
    }
    if (d == nullptr) {
      out[qi] = fallback_.predict(query);
      continue;
    }

    if (d->tree.has_value()) {
      // Restricted to the nearest max_neighbors samples via the tree; the
      // scratch (heap + visit stack) is per-thread and batch-reused.
      const std::size_t n = d->tree->nearest(query.position, config_.max_neighbors, scratch);
      const std::vector<KdHit>& hits = scratch.heap;
      double weighted = 0.0;
      double weight_sum = 0.0;
      bool exact = false;
      for (std::size_t i = 0; i < n; ++i) {
        const double dd = hits[i].distance;
        if (dd < kExactEps) {
          out[qi] = d->values[hits[i].index];
          exact = true;
          break;
        }
        const double w = weight_of(dd);
        weighted += w * d->values[hits[i].index];
        weight_sum += w;
      }
      if (!exact) out[qi] = weighted / weight_sum;
      continue;
    }

    // All samples of the MAC contribute: a single allocation-free pass.
    double weighted = 0.0;
    double weight_sum = 0.0;
    bool exact = false;
    for (std::size_t i = 0; i < d->positions.size(); ++i) {
      const double dd = d->positions[i].distance_to(query.position);
      if (dd < kExactEps) {
        out[qi] = d->values[i];
        exact = true;
        break;
      }
      const double w = weight_of(dd);
      weighted += w * d->values[i];
      weight_sum += w;
    }
    if (!exact) out[qi] = weighted / weight_sum;
  }
}

void IdwRegressor::save(util::BinaryWriter& w) const {
  w.f64(config_.power);
  w.u64(config_.max_neighbors);
  fallback_.save(w);
  // MAC-sorted so repeated saves of the same model are byte-identical.
  std::map<radio::MacAddress, const MacData*> sorted;
  for (const auto& [mac, d] : per_mac_) sorted[mac] = &d;
  w.u64(sorted.size());
  for (const auto& [mac, d] : sorted) {
    save_mac(w, mac);
    w.u64(d->positions.size());
    for (std::size_t i = 0; i < d->positions.size(); ++i) {
      w.f64(d->positions[i].x);
      w.f64(d->positions[i].y);
      w.f64(d->positions[i].z);
      w.f64(d->values[i]);
    }
  }
}

void IdwRegressor::load(util::BinaryReader& r) {
  config_.power = r.f64();
  config_.max_neighbors = r.u64();
  fallback_.load(r);
  per_mac_.clear();
  const std::uint64_t macs = r.u64();
  for (std::uint64_t i = 0; i < macs; ++i) {
    const radio::MacAddress mac = load_mac(r);
    MacData& d = per_mac_[mac];
    const std::uint64_t n = r.u64();
    d.positions.resize(n);
    d.values.resize(n);
    for (std::uint64_t j = 0; j < n; ++j) {
      d.positions[j].x = r.f64();
      d.positions[j].y = r.f64();
      d.positions[j].z = r.f64();
      d.values[j] = r.f64();
    }
    if (config_.max_neighbors > 0) d.tree.emplace(d.positions);
  }
}

std::string IdwRegressor::name() const {
  return util::format("idw(p={:.1f},max_n={})", config_.power, config_.max_neighbors);
}

}  // namespace remgen::ml
