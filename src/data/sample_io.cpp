#include "data/sample_io.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace remgen::data {

namespace {

std::string line_error(std::size_t line, const std::string& reason) {
  return util::format("line {}: {}", line, reason);
}

bool fail(std::size_t line, const std::string& reason, std::string* error) {
  if (error != nullptr) *error = line_error(line, reason);
  return false;
}

}  // namespace

const std::vector<std::string>& sample_columns() {
  static const std::vector<std::string> columns{
      "x",   "y",       "z",         "ssid",   "rss_dbm",
      "mac", "channel", "timestamp_s", "uav_id", "waypoint_index"};
  return columns;
}

bool parse_finite_double(std::string_view token, double* out) {
  if (token.empty()) return false;
  double value = 0.0;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  // from_chars happily parses "nan"/"inf" tokens; a sample with a non-finite
  // coordinate or RSS is garbage, so finiteness is part of the contract.
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool parse_int(std::string_view token, int* out) {
  if (token.empty()) return false;
  int value = 0;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end) return false;
  *out = value;
  return true;
}

bool parse_sample_fields(const std::vector<std::string>& fields, std::size_t line,
                         Sample* out, std::string* error) {
  if (fields.size() != kSampleColumnCount) {
    return fail(line,
                util::format("expected {} columns, got {}", kSampleColumnCount, fields.size()),
                error);
  }
  Sample s;
  const char* axis_names[3] = {"x", "y", "z"};
  double coords[3] = {0.0, 0.0, 0.0};
  for (std::size_t a = 0; a < 3; ++a) {
    if (!parse_finite_double(fields[a], &coords[a])) {
      return fail(line, util::format("bad {} coordinate '{}'", axis_names[a], fields[a]), error);
    }
  }
  s.position = {coords[0], coords[1], coords[2]};
  s.ssid = fields[3];
  if (!parse_finite_double(fields[4], &s.rss_dbm)) {
    return fail(line, util::format("bad rss_dbm '{}'", fields[4]), error);
  }
  const auto mac = radio::MacAddress::parse(fields[5]);
  if (!mac) return fail(line, util::format("bad mac '{}'", fields[5]), error);
  s.mac = *mac;
  if (!parse_int(fields[6], &s.channel)) {
    return fail(line, util::format("bad channel '{}'", fields[6]), error);
  }
  if (!parse_finite_double(fields[7], &s.timestamp_s)) {
    return fail(line, util::format("bad timestamp_s '{}'", fields[7]), error);
  }
  if (!parse_int(fields[8], &s.uav_id)) {
    return fail(line, util::format("bad uav_id '{}'", fields[8]), error);
  }
  if (!parse_int(fields[9], &s.waypoint_index)) {
    return fail(line, util::format("bad waypoint_index '{}'", fields[9]), error);
  }
  *out = std::move(s);
  return true;
}

bool parse_csv_sample_line(std::string_view text, std::size_t line, Sample* out,
                           std::string* error) {
  // parse_csv treats its first row as the header; for a single line that IS
  // the row, so the "header" is exactly the parsed field list.
  util::CsvTable table;
  try {
    table = util::parse_csv(text);
  } catch (const std::exception& e) {
    return fail(line, e.what(), error);
  }
  if (!table.rows.empty()) return fail(line, "embedded newline in row", error);
  return parse_sample_fields(table.header, line, out, error);
}

bool parse_jsonl_sample_line(std::string_view text, std::size_t line, Sample* out,
                             std::string* error) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const std::exception& e) {
    return fail(line, e.what(), error);
  }
  if (!doc.is_object()) return fail(line, "expected a JSON object", error);
  std::vector<std::string> fields(kSampleColumnCount);
  const auto& columns = sample_columns();
  for (const auto& [key, value] : doc.as_object()) {
    std::size_t column = kSampleColumnCount;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (key == columns[c]) {
        column = c;
        break;
      }
    }
    if (column == kSampleColumnCount) {
      return fail(line, util::format("unknown field '{}'", key), error);
    }
    // Re-tokenise through the strict field parser: numeric JSON values are
    // re-rendered exactly (Json keeps integers exact and doubles shortest-
    // round-trip), strings pass through, and any other kind is rejected.
    if (value.is_string()) {
      fields[column] = value.as_string();
    } else if (value.is_number()) {
      fields[column] = value.dump();
    } else {
      return fail(line, util::format("field '{}' must be a number or string", key), error);
    }
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    // ssid may legitimately be empty; every other field must be present.
    if (fields[c].empty() && c != 3 && !doc.contains(columns[c])) {
      return fail(line, util::format("missing field '{}'", columns[c]), error);
    }
  }
  return parse_sample_fields(fields, line, out, error);
}

bool is_sample_csv_header(std::string_view text) {
  util::CsvTable table;
  try {
    table = util::parse_csv(text);
  } catch (const std::exception&) {
    return false;
  }
  return table.rows.empty() && table.header == sample_columns();
}

}  // namespace remgen::data
