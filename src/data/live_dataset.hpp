// LiveDataset: the mutable half of the ingest split.
//
// A Dataset is a frozen artefact — the thing a snapshot serialises and a
// model trains on. A LiveDataset is the accumulating stream state: samples
// in arrival order plus per-MAC incremental statistics (count and running
// mean RSS, updated in O(1) per sample) so the epoch gate and dashboards
// never rescan the whole history. The paper's >= 16-samples-per-MAC
// preprocessing rule is applied per epoch via prepared(): qualification is
// monotone (a MAC that ever reaches the gate keeps every sample, including
// the early ones), which is what makes snapshot deltas pure row-insertions.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "data/sink.hpp"

namespace remgen::data {

/// Arrival-ordered sample accumulator with O(1) per-MAC running stats.
class LiveDataset final : public SampleSink {
 public:
  /// Per-MAC incremental statistics, maintained as samples arrive.
  struct MacStats {
    std::size_t count = 0;
    double mean_rss_dbm = 0.0;  ///< Running mean (Welford-style update).
  };

  void push(const Sample& sample) override;
  using SampleSink::push_batch;

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] const std::map<radio::MacAddress, MacStats>& mac_stats() const noexcept {
    return stats_;
  }

  /// MACs currently at or above the sample gate.
  [[nodiscard]] std::size_t qualified_macs(std::size_t min_samples) const;

  /// The raw stream as an immutable Dataset (arrival order preserved).
  [[nodiscard]] Dataset dataset() const { return Dataset(samples_); }

  /// The epoch gate: samples of MACs with >= min_samples observations, in
  /// arrival order — byte-identical to
  /// dataset().filter_min_samples_per_mac(min_samples). Uses the incremental
  /// counts, so no per-epoch rescan of the MAC histogram.
  [[nodiscard]] Dataset prepared(std::size_t min_samples, std::size_t* dropped = nullptr) const;

 private:
  std::vector<Sample> samples_;
  std::map<radio::MacAddress, MacStats> stats_;
};

}  // namespace remgen::data
