// The location-annotated measurement record the toolchain produces and the
// ML stage consumes.
#pragma once

#include <string>

#include "geom/vec3.hpp"
#include "radio/mac_address.hpp"

namespace remgen::data {

/// One (location, ssid, rssi, mac, channel) observation.
struct Sample {
  geom::Vec3 position;       ///< UAV position estimate at scan time (m).
  std::string ssid;
  double rss_dbm = 0.0;
  radio::MacAddress mac;
  int channel = 0;
  double timestamp_s = 0.0;  ///< Campaign time of the scan.
  int uav_id = -1;           ///< Which UAV collected it.
  int waypoint_index = -1;   ///< Which waypoint the scan belonged to.
};

}  // namespace remgen::data
