#include "data/live_dataset.hpp"

namespace remgen::data {

void LiveDataset::push(const Sample& sample) {
  samples_.push_back(sample);
  MacStats& s = stats_[sample.mac];
  ++s.count;
  s.mean_rss_dbm += (sample.rss_dbm - s.mean_rss_dbm) / static_cast<double>(s.count);
}

std::size_t LiveDataset::qualified_macs(std::size_t min_samples) const {
  std::size_t out = 0;
  for (const auto& [mac, s] : stats_) {
    if (s.count >= min_samples) ++out;
  }
  return out;
}

Dataset LiveDataset::prepared(std::size_t min_samples, std::size_t* dropped) const {
  Dataset out;
  std::size_t dropped_count = 0;
  for (const Sample& s : samples_) {
    if (stats_.at(s.mac).count >= min_samples) {
      out.add(s);
    } else {
      ++dropped_count;
    }
  }
  if (dropped != nullptr) *dropped = dropped_count;
  return out;
}

}  // namespace remgen::data
