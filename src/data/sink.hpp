// SampleSink: the streaming handoff between sample producers (a running
// campaign, a tailed capture file) and consumers (the ingest pipeline).
//
// Producers push samples in a deterministic order — mission::run_campaign
// streams its merged dataset in UAV index order, identical at any thread
// count — so a sink that folds samples into derived state sees the same byte
// stream as a batch consumer reading the final Dataset.
#pragma once

#include <span>

#include "data/sample.hpp"

namespace remgen::data {

/// Receives samples as they are produced. Implementations are not required
/// to be thread-safe; producers call from one thread in stream order.
class SampleSink {
 public:
  virtual ~SampleSink() = default;

  virtual void push(const Sample& sample) = 0;

  /// Batched push; equivalent to push() per element, in order.
  virtual void push_batch(std::span<const Sample> samples) {
    for (const Sample& s : samples) push(s);
  }
};

}  // namespace remgen::data
