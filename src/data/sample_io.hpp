// Strict sample-row parsing for streaming ingestion.
//
// Dataset::read_csv historically leaned on std::stod, which accepts trailing
// garbage ("3.2abc"), silently truncates, and says nothing about which row
// was bad. A streaming source cannot afford that: one malformed line must be
// rejected with a line-numbered reason and counted, never folded into the
// live dataset where it would skew every later epoch. These parsers are the
// strict path both the batch CSV reader and the ingest tail sources share:
// full-token numeric parsing (no prefixes, no trailing bytes), finite-value
// enforcement (NaN/inf RSS or coordinates are rejected), exact column
// counts, and errors that carry the 1-based line number.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "data/sample.hpp"

namespace remgen::data {

/// Canonical CSV column order (also the JSONL field set).
inline constexpr std::size_t kSampleColumnCount = 10;
[[nodiscard]] const std::vector<std::string>& sample_columns();

/// Full-token strict parses: the entire token must be consumed and the value
/// must be finite (parse_finite_double) / in range (parse_int). Returns false
/// on any violation. Exposed for tests and other strict readers.
[[nodiscard]] bool parse_finite_double(std::string_view token, double* out);
[[nodiscard]] bool parse_int(std::string_view token, int* out);

/// Parses one sample from `fields` given in canonical column order
/// (x, y, z, ssid, rss_dbm, mac, channel, timestamp_s, uav_id,
/// waypoint_index). On failure returns false and sets `*error` to a
/// "line N: reason" message. `line` is the 1-based source line for messages.
[[nodiscard]] bool parse_sample_fields(const std::vector<std::string>& fields,
                                       std::size_t line, Sample* out, std::string* error);

/// Parses one CSV data line (canonical column order, quoting per util::csv).
/// Same error contract as parse_sample_fields.
[[nodiscard]] bool parse_csv_sample_line(std::string_view text, std::size_t line,
                                         Sample* out, std::string* error);

/// Parses one JSONL object line with the canonical field names (numbers for
/// the numeric fields, strings for ssid/mac). Unknown keys are rejected so a
/// typo'd field name fails loudly instead of silently defaulting.
[[nodiscard]] bool parse_jsonl_sample_line(std::string_view text, std::size_t line,
                                           Sample* out, std::string* error);

/// True when `text` looks like the canonical CSV header row ("x,y,z,...").
/// Tail sources use it to skip a leading header without a schema handshake.
[[nodiscard]] bool is_sample_csv_header(std::string_view text);

}  // namespace remgen::data
