// Dataset: the collected sample set plus the preprocessing and descriptive
// statistics the paper's analysis performs on it.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace remgen::data {

/// Train/test partition of a dataset.
struct DatasetSplit {
  std::vector<Sample> train;
  std::vector<Sample> test;
};

/// Mutable container of samples with dataset-level operations.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Sample> samples) : samples_(std::move(samples)) {}

  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  void append(const Dataset& other);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Distinct MAC addresses present.
  [[nodiscard]] std::set<radio::MacAddress> distinct_macs() const;

  /// Distinct SSIDs present.
  [[nodiscard]] std::set<std::string> distinct_ssids() const;

  /// Mean RSS over all samples (requires non-empty).
  [[nodiscard]] double mean_rss_dbm() const;

  /// Sample count per MAC.
  [[nodiscard]] std::map<radio::MacAddress, std::size_t> samples_per_mac() const;

  /// Sample count per waypoint index.
  [[nodiscard]] std::map<int, std::size_t> samples_per_waypoint() const;

  /// Sample count per UAV id.
  [[nodiscard]] std::map<int, std::size_t> samples_per_uav() const;

  /// The paper's preprocessing: drops every sample whose MAC has fewer than
  /// `min_samples` observations (16 in the paper). Returns the new dataset
  /// and reports how many samples were dropped via `dropped` if non-null.
  [[nodiscard]] Dataset filter_min_samples_per_mac(std::size_t min_samples,
                                                   std::size_t* dropped = nullptr) const;

  /// Histogram of sample positions along one axis (0=x, 1=y, 2=z) with the
  /// given bin width, as (bin lower edge, count) pairs covering the data.
  [[nodiscard]] std::vector<std::pair<double, std::size_t>> axis_histogram(
      int axis, double bin_width) const;

  /// Random shuffle + split: `train_fraction` of samples into train, rest
  /// into test. Deterministic given the RNG state.
  [[nodiscard]] DatasetSplit split(double train_fraction, util::Rng& rng) const;

  /// Writes the dataset as CSV (header: x,y,z,ssid,rss_dbm,mac,channel,
  /// timestamp_s,uav_id,waypoint_index).
  void write_csv(std::ostream& out) const;

  /// Parses a dataset from CSV written by write_csv. Throws
  /// std::runtime_error on malformed input.
  [[nodiscard]] static Dataset read_csv(std::istream& in);

 private:
  std::vector<Sample> samples_;
};

}  // namespace remgen::data
