// Contiguous row-major feature storage for the ML stage.
//
// Replaces the std::vector<std::vector<double>> row set: one allocation for
// the whole matrix, so distance kernels scan training rows cache-linearly
// instead of chasing a pointer per row, and snapshot save/load moves one flat
// block of doubles. The serialized layout (row count, column count, values in
// row-major order) matches the bytes the nested-vector code used to write, so
// existing REMSNAP sections stay readable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/binary_io.hpp"

namespace remgen::data {

/// Dense rows x cols matrix of doubles, row-major, one allocation.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;

  /// A zero-initialised rows x cols matrix.
  FeatureMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  /// One row as a span (valid until the matrix is resized or destroyed).
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {values_.data() + i * cols_, cols_};
  }

  /// Raw pointer to a row's first element — the distance kernels' hot input.
  [[nodiscard]] const double* row_ptr(std::size_t i) const noexcept {
    return values_.data() + i * cols_;
  }

  /// The whole value block in row-major order.
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Writes rows, cols, then the values row-major — byte-identical to the
  /// layout the previous per-row serialisation produced.
  void save(util::BinaryWriter& w) const {
    w.u64(rows_);
    w.u64(cols_);
    for (const double v : values_) w.f64(v);
  }

  /// Reads a matrix previously written by save().
  [[nodiscard]] static FeatureMatrix load(util::BinaryReader& r) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    FeatureMatrix m(rows, cols);
    for (double& v : m.values_) v = r.f64();
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace remgen::data
