#include "data/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/contracts.hpp"

namespace remgen::data {

void save_feature_config(util::BinaryWriter& w, const FeatureConfig& config) {
  w.u8(config.include_position ? 1 : 0);
  w.u8(config.include_mac_onehot ? 1 : 0);
  w.f64(config.mac_onehot_scale);
  w.u8(config.include_channel_onehot ? 1 : 0);
  w.u8(config.normalize_position ? 1 : 0);
}

FeatureConfig load_feature_config(util::BinaryReader& r) {
  FeatureConfig config;
  config.include_position = r.u8() != 0;
  config.include_mac_onehot = r.u8() != 0;
  config.mac_onehot_scale = r.f64();
  config.include_channel_onehot = r.u8() != 0;
  config.normalize_position = r.u8() != 0;
  return config;
}

FeatureEncoder FeatureEncoder::fit(std::span<const Sample> samples, const FeatureConfig& config) {
  REMGEN_EXPECTS(!samples.empty());
  FeatureEncoder enc;
  enc.config_ = config;

  // Sorted vocabularies make the encoding independent of sample order.
  std::set<radio::MacAddress> macs;
  std::set<int> channels;
  geom::Vec3 lo = samples.front().position;
  geom::Vec3 hi = lo;
  for (const Sample& s : samples) {
    macs.insert(s.mac);
    channels.insert(s.channel);
    lo = {std::min(lo.x, s.position.x), std::min(lo.y, s.position.y),
          std::min(lo.z, s.position.z)};
    hi = {std::max(hi.x, s.position.x), std::max(hi.y, s.position.y),
          std::max(hi.z, s.position.z)};
  }
  int next = 0;
  for (const radio::MacAddress& mac : macs) enc.mac_index_[mac] = next++;
  next = 0;
  for (const int c : channels) enc.channel_index_[c] = next++;

  enc.position_min_ = lo;
  constexpr double kEps = 1e-9;
  enc.position_range_ = {std::max(hi.x - lo.x, kEps), std::max(hi.y - lo.y, kEps),
                         std::max(hi.z - lo.z, kEps)};

  enc.dimension_ = 0;
  if (config.include_position) enc.dimension_ += 3;
  if (config.include_mac_onehot) enc.dimension_ += enc.mac_index_.size();
  if (config.include_channel_onehot) enc.dimension_ += enc.channel_index_.size();
  REMGEN_ENSURES(enc.dimension_ > 0);
  return enc;
}

int FeatureEncoder::mac_index(const radio::MacAddress& mac) const {
  const auto it = mac_index_.find(mac);
  return it == mac_index_.end() ? -1 : it->second;
}

int FeatureEncoder::channel_index(int channel) const {
  const auto it = channel_index_.find(channel);
  return it == channel_index_.end() ? -1 : it->second;
}

std::vector<double> FeatureEncoder::encode(const Sample& sample) const {
  std::vector<double> out(dimension_, 0.0);
  encode_into(sample, out);
  return out;
}

void FeatureEncoder::encode_into(const Sample& sample, std::span<double> out) const {
  REMGEN_EXPECTS(out.size() == dimension_);
  std::size_t base = 0;
  if (config_.include_position) {
    if (config_.normalize_position) {
      out[0] = (sample.position.x - position_min_.x) / position_range_.x;
      out[1] = (sample.position.y - position_min_.y) / position_range_.y;
      out[2] = (sample.position.z - position_min_.z) / position_range_.z;
    } else {
      out[0] = sample.position.x;
      out[1] = sample.position.y;
      out[2] = sample.position.z;
    }
    base = 3;
  }
  if (config_.include_mac_onehot) {
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(base),
              out.begin() + static_cast<std::ptrdiff_t>(base + mac_index_.size()), 0.0);
    if (const int idx = mac_index(sample.mac); idx >= 0) {
      out[base + static_cast<std::size_t>(idx)] = config_.mac_onehot_scale;
    }
    base += mac_index_.size();
  }
  if (config_.include_channel_onehot) {
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(), 0.0);
    if (const auto it = channel_index_.find(sample.channel); it != channel_index_.end()) {
      out[base + static_cast<std::size_t>(it->second)] = 1.0;
    }
  }
}

std::vector<std::vector<double>> FeatureEncoder::encode_all(
    std::span<const Sample> samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) out.push_back(encode(s));
  return out;
}

FeatureMatrix FeatureEncoder::encode_matrix(std::span<const Sample> samples) const {
  FeatureMatrix out(samples.size(), dimension_);
  for (std::size_t i = 0; i < samples.size(); ++i) encode_into(samples[i], out.row(i));
  return out;
}

void FeatureEncoder::save(util::BinaryWriter& w) const {
  save_feature_config(w, config_);
  // Vocabularies go out ordered by MAC/channel (not hash order) so the bytes
  // are deterministic; the stored index keeps the one-hot layout identical.
  std::map<radio::MacAddress, int> macs(mac_index_.begin(), mac_index_.end());
  w.u64(macs.size());
  for (const auto& [mac, index] : macs) {
    w.bytes(mac.octets().data(), 6);
    w.i64(index);
  }
  std::map<int, int> channels(channel_index_.begin(), channel_index_.end());
  w.u64(channels.size());
  for (const auto& [channel, index] : channels) {
    w.i64(channel);
    w.i64(index);
  }
  for (const double v : {position_min_.x, position_min_.y, position_min_.z, position_range_.x,
                         position_range_.y, position_range_.z}) {
    w.f64(v);
  }
  w.u64(dimension_);
}

FeatureEncoder FeatureEncoder::load(util::BinaryReader& r) {
  FeatureEncoder enc;
  enc.config_ = load_feature_config(r);
  const std::uint64_t mac_count = r.u64();
  for (std::uint64_t i = 0; i < mac_count; ++i) {
    std::array<std::uint8_t, 6> octets{};
    r.bytes(octets.data(), octets.size());
    const auto index = static_cast<int>(r.i64());
    enc.mac_index_[radio::MacAddress(octets)] = index;
  }
  const std::uint64_t channel_count = r.u64();
  for (std::uint64_t i = 0; i < channel_count; ++i) {
    const auto channel = static_cast<int>(r.i64());
    enc.channel_index_[channel] = static_cast<int>(r.i64());
  }
  enc.position_min_ = {r.f64(), r.f64(), r.f64()};
  enc.position_range_ = {r.f64(), r.f64(), r.f64()};
  enc.dimension_ = r.u64();
  return enc;
}

void TargetScaler::save(util::BinaryWriter& w) const {
  w.f64(mean_);
  w.f64(std_);
}

TargetScaler TargetScaler::load(util::BinaryReader& r) {
  TargetScaler scaler;
  scaler.mean_ = r.f64();
  scaler.std_ = r.f64();
  return scaler;
}

TargetScaler TargetScaler::fit(std::span<const double> values) {
  REMGEN_EXPECTS(!values.empty());
  TargetScaler scaler;
  double acc = 0.0;
  for (const double v : values) acc += v;
  scaler.mean_ = acc / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - scaler.mean_) * (v - scaler.mean_);
  var /= static_cast<double>(values.size());
  scaler.std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  return scaler;
}

std::vector<double> rss_targets(std::span<const Sample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) out.push_back(s.rss_dbm);
  return out;
}

}  // namespace remgen::data
