// Feature encoding for the ML stage.
//
// The paper's feature set is the (x, y, z) coordinates plus the one-hot
// encoded MAC address (and optionally the channel), with a variant that
// multiplies the one-hot block by a scale factor so samples from different
// APs are pushed further apart in kNN feature space (scale 3 with k=16 was
// the paper's best configuration).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "data/feature_matrix.hpp"
#include "data/sample.hpp"
#include "radio/mac_address.hpp"
#include "util/binary_io.hpp"

namespace remgen::data {

/// What goes into the feature vector.
struct FeatureConfig {
  bool include_position = true;
  bool include_mac_onehot = true;
  double mac_onehot_scale = 1.0;     ///< Multiplier on the one-hot block.
  bool include_channel_onehot = false;
  bool normalize_position = false;   ///< Min-max scale coordinates to [0,1]
                                     ///< (used by the neural network).
};

/// Snapshot (de)serialisation of a feature configuration.
void save_feature_config(util::BinaryWriter& w, const FeatureConfig& config);
[[nodiscard]] FeatureConfig load_feature_config(util::BinaryReader& r);

/// Vocabulary-based encoder fitted on training data. Unknown MACs/channels
/// at prediction time encode as all-zero one-hot blocks.
class FeatureEncoder {
 public:
  /// Learns the MAC/channel vocabularies and position ranges from `samples`.
  [[nodiscard]] static FeatureEncoder fit(std::span<const Sample> samples,
                                          const FeatureConfig& config);

  /// Total feature dimension.
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Number of MACs in the vocabulary.
  [[nodiscard]] std::size_t mac_vocabulary_size() const noexcept { return mac_index_.size(); }

  /// Index of a MAC in the vocabulary, or -1 if unseen during fit.
  [[nodiscard]] int mac_index(const radio::MacAddress& mac) const;

  /// Number of channels in the vocabulary.
  [[nodiscard]] std::size_t channel_vocabulary_size() const noexcept {
    return channel_index_.size();
  }

  /// Index of a channel in the vocabulary, or -1 if unseen during fit.
  [[nodiscard]] int channel_index(int channel) const;

  /// Encodes one sample.
  [[nodiscard]] std::vector<double> encode(const Sample& sample) const;

  /// Encodes one sample into caller-provided storage (`out.size()` must be
  /// dimension()) — the allocation-free path hot prediction loops use with a
  /// per-thread scratch buffer.
  void encode_into(const Sample& sample, std::span<double> out) const;

  /// Encodes many samples (row per sample).
  [[nodiscard]] std::vector<std::vector<double>> encode_all(std::span<const Sample> samples) const;

  /// Encodes many samples into one contiguous row-major matrix.
  [[nodiscard]] FeatureMatrix encode_matrix(std::span<const Sample> samples) const;

  [[nodiscard]] const FeatureConfig& config() const noexcept { return config_; }

  /// Writes the fitted vocabulary and position ranges (bit-exact doubles).
  void save(util::BinaryWriter& w) const;

  /// Reads an encoder previously written by save().
  [[nodiscard]] static FeatureEncoder load(util::BinaryReader& r);

 private:
  FeatureConfig config_;
  std::unordered_map<radio::MacAddress, int> mac_index_;
  std::unordered_map<int, int> channel_index_;
  geom::Vec3 position_min_;
  geom::Vec3 position_range_;  ///< Componentwise max-min, floored at epsilon.
  std::size_t dimension_ = 0;
};

/// Standardises regression targets (zero mean, unit variance) — used by the
/// neural network; inverse-transformed at prediction time.
class TargetScaler {
 public:
  /// Learns mean/std from values (non-empty).
  [[nodiscard]] static TargetScaler fit(std::span<const double> values);

  [[nodiscard]] double transform(double value) const noexcept { return (value - mean_) / std_; }
  [[nodiscard]] double inverse(double scaled) const noexcept { return scaled * std_ + mean_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return std_; }

  void save(util::BinaryWriter& w) const;
  [[nodiscard]] static TargetScaler load(util::BinaryReader& r);

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

/// Extracts the RSS targets of a sample range.
[[nodiscard]] std::vector<double> rss_targets(std::span<const Sample> samples);

}  // namespace remgen::data
