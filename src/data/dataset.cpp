#include "data/dataset.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "data/sample_io.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace remgen::data {

void Dataset::append(const Dataset& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

std::set<radio::MacAddress> Dataset::distinct_macs() const {
  std::set<radio::MacAddress> out;
  for (const Sample& s : samples_) out.insert(s.mac);
  return out;
}

std::set<std::string> Dataset::distinct_ssids() const {
  std::set<std::string> out;
  for (const Sample& s : samples_) out.insert(s.ssid);
  return out;
}

double Dataset::mean_rss_dbm() const {
  REMGEN_EXPECTS(!samples_.empty());
  double acc = 0.0;
  for (const Sample& s : samples_) acc += s.rss_dbm;
  return acc / static_cast<double>(samples_.size());
}

std::map<radio::MacAddress, std::size_t> Dataset::samples_per_mac() const {
  std::map<radio::MacAddress, std::size_t> out;
  for (const Sample& s : samples_) ++out[s.mac];
  return out;
}

std::map<int, std::size_t> Dataset::samples_per_waypoint() const {
  std::map<int, std::size_t> out;
  for (const Sample& s : samples_) ++out[s.waypoint_index];
  return out;
}

std::map<int, std::size_t> Dataset::samples_per_uav() const {
  std::map<int, std::size_t> out;
  for (const Sample& s : samples_) ++out[s.uav_id];
  return out;
}

Dataset Dataset::filter_min_samples_per_mac(std::size_t min_samples, std::size_t* dropped) const {
  const auto counts = samples_per_mac();
  Dataset out;
  std::size_t dropped_count = 0;
  for (const Sample& s : samples_) {
    if (counts.at(s.mac) >= min_samples) {
      out.add(s);
    } else {
      ++dropped_count;
    }
  }
  if (dropped != nullptr) *dropped = dropped_count;
  return out;
}

std::vector<std::pair<double, std::size_t>> Dataset::axis_histogram(int axis,
                                                                    double bin_width) const {
  REMGEN_EXPECTS(axis >= 0 && axis <= 2);
  REMGEN_EXPECTS(bin_width > 0.0);
  auto value = [axis](const Sample& s) {
    switch (axis) {
      case 0: return s.position.x;
      case 1: return s.position.y;
      default: return s.position.z;
    }
  };
  if (samples_.empty()) return {};
  double lo = value(samples_.front());
  double hi = lo;
  for (const Sample& s : samples_) {
    lo = std::min(lo, value(s));
    hi = std::max(hi, value(s));
  }
  const auto first_bin = static_cast<long>(std::floor(lo / bin_width));
  const auto last_bin = static_cast<long>(std::floor(hi / bin_width));
  std::vector<std::pair<double, std::size_t>> bins;
  for (long b = first_bin; b <= last_bin; ++b) {
    bins.emplace_back(static_cast<double>(b) * bin_width, 0);
  }
  for (const Sample& s : samples_) {
    const auto b = static_cast<long>(std::floor(value(s) / bin_width));
    bins[static_cast<std::size_t>(b - first_bin)].second += 1;
  }
  return bins;
}

DatasetSplit Dataset::split(double train_fraction, util::Rng& rng) const {
  REMGEN_EXPECTS(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<std::size_t> order(samples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const auto train_count =
      static_cast<std::size_t>(std::llround(train_fraction * static_cast<double>(order.size())));
  DatasetSplit out;
  out.train.reserve(train_count);
  out.test.reserve(order.size() - train_count);
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < train_count ? out.train : out.test).push_back(samples_[order[i]]);
  }
  return out;
}

void Dataset::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row({"x", "y", "z", "ssid", "rss_dbm", "mac", "channel", "timestamp_s", "uav_id",
                    "waypoint_index"});
  for (const Sample& s : samples_) {
    writer.write_row({util::format("{:.4f}", s.position.x), util::format("{:.4f}", s.position.y),
                      util::format("{:.4f}", s.position.z), s.ssid,
                      util::format("{:.2f}", s.rss_dbm), s.mac.to_string(),
                      util::format("{}", s.channel), util::format("{:.3f}", s.timestamp_s),
                      util::format("{}", s.uav_id), util::format("{}", s.waypoint_index)});
  }
}

Dataset Dataset::read_csv(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const util::CsvTable table = util::parse_csv(buffer.str());
  const auto& columns = sample_columns();
  std::array<int, kSampleColumnCount> idx{};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    idx[c] = table.column_index(columns[c]);
    if (idx[c] < 0) throw std::runtime_error("dataset csv: missing column " + columns[c]);
  }
  Dataset out;
  std::vector<std::string> fields(kSampleColumnCount);
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const util::CsvRow& row = table.rows[r];
    // The reported line assumes one physical line per row (quoted embedded
    // newlines would shift it); row r follows the header on line r + 2.
    const std::size_t line = r + 2;
    if (row.size() != kSampleColumnCount) {
      throw std::runtime_error(util::format("dataset csv: line {}: expected {} columns, got {}",
                                            line, kSampleColumnCount, row.size()));
    }
    for (std::size_t c = 0; c < columns.size(); ++c) {
      fields[c] = row[static_cast<std::size_t>(idx[c])];
    }
    Sample s;
    std::string error;
    if (!parse_sample_fields(fields, line, &s, &error)) {
      throw std::runtime_error("dataset csv: " + error);
    }
    out.add(std::move(s));
  }
  return out;
}

}  // namespace remgen::data
