#include "mission/waypoint.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace remgen::mission {

std::vector<geom::Vec3> generate_waypoint_grid(const geom::Aabb& volume,
                                               const WaypointGridConfig& config) {
  REMGEN_EXPECTS(config.nx > 0 && config.ny > 0 && config.nz > 0);
  const geom::Vec3 lo = volume.min + geom::Vec3{config.margin_m, config.margin_m, config.margin_m};
  const geom::Vec3 hi = volume.max - geom::Vec3{config.margin_m, config.margin_m, config.margin_m};
  REMGEN_EXPECTS(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z);

  auto coord = [](double a, double b, std::size_t i, std::size_t n) {
    if (n == 1) return (a + b) * 0.5;
    return a + (b - a) * static_cast<double>(i) / static_cast<double>(n - 1);
  };

  std::vector<geom::Vec3> waypoints;
  waypoints.reserve(config.nx * config.ny * config.nz);
  for (std::size_t iz = 0; iz < config.nz; ++iz) {
    for (std::size_t iy = 0; iy < config.ny; ++iy) {
      // Serpentine: alternate x direction per row, and mirror rows per layer.
      const bool reverse_x = (iy + iz) % 2 == 1;
      for (std::size_t k = 0; k < config.nx; ++k) {
        const std::size_t ix = reverse_x ? config.nx - 1 - k : k;
        waypoints.push_back({coord(lo.x, hi.x, ix, config.nx), coord(lo.y, hi.y, iy, config.ny),
                             coord(lo.z, hi.z, iz, config.nz)});
      }
    }
  }
  return waypoints;
}

std::vector<std::vector<geom::Vec3>> split_waypoints_by_axis(
    const std::vector<geom::Vec3>& waypoints, int axis, std::size_t groups) {
  REMGEN_EXPECTS(axis >= 0 && axis <= 2);
  REMGEN_EXPECTS(groups > 0);
  auto value = [axis](const geom::Vec3& p) {
    switch (axis) {
      case 0: return p.x;
      case 1: return p.y;
      default: return p.z;
    }
  };

  // Rank waypoints by axis coordinate, stable against the input order.
  std::vector<std::size_t> order(waypoints.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return value(waypoints[a]) < value(waypoints[b]);
  });

  std::vector<std::vector<geom::Vec3>> out(groups);
  const std::size_t per_group = (waypoints.size() + groups - 1) / groups;
  // Collect each group's member indices, then restore the original
  // (serpentine) flight ordering inside the group.
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = g * per_group;
    const std::size_t end = std::min(begin + per_group, waypoints.size());
    if (begin >= end) continue;
    std::vector<std::size_t> members(order.begin() + static_cast<std::ptrdiff_t>(begin),
                                     order.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(members.begin(), members.end());
    out[g].reserve(members.size());
    for (const std::size_t i : members) out[g].push_back(waypoints[i]);
  }
  return out;
}

}  // namespace remgen::mission
