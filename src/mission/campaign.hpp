// Campaign runner: the end-to-end measurement collection the paper's
// validation performs — a waypoint grid over the scan volume, split across a
// sequentially operated UAV fleet, producing one location-annotated Dataset.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "fault/fault.hpp"
#include "lighthouse/lighthouse.hpp"
#include "mission/base_station.hpp"
#include "mission/waypoint.hpp"
#include "radio/scenario.hpp"
#include "uav/crazyflie.hpp"
#include "uwb/anchor.hpp"
#include "util/rng.hpp"

namespace remgen::data {
class SampleSink;
}  // namespace remgen::data

namespace remgen::mission {

/// Localization technology mounted on the fleet.
enum class PositioningKind {
  Uwb,         ///< Loco Positioning System (the paper's demonstration).
  Lighthouse,  ///< Infrared sweeps (the paper's named future work).
};

/// REM-sampling receiver technology mounted on a UAV.
enum class ReceiverKind {
  Wifi,  ///< ESP-01 over UART/AT (the paper's demonstration).
  Ble,   ///< BLE observer over I2C (the modular-integration extension).
};

/// Full campaign configuration.
struct CampaignConfig {
  WaypointGridConfig grid;          ///< 6x4x3 = 72 waypoints by default.
  MissionConfig mission;
  uav::CrazyflieConfig uav;
  std::size_t uav_count = 2;
  PositioningKind positioning = PositioningKind::Uwb;
  std::size_t anchor_count = 8;     ///< UWB anchors at the volume corners.
  lighthouse::LighthouseConfig lighthouse;  ///< Used when positioning = Lighthouse
                                            ///< (two corner stations).
  std::vector<ReceiverKind> receivers{ReceiverKind::Wifi};  ///< Deck carried by
                                            ///< UAV u = receivers[u % size].
  scanner::BleModuleConfig ble_deck;        ///< BLE module timing, when used.
  int split_axis = 0;               ///< UAV slabs along x, as in the paper.
  bool optimize_route = false;      ///< Re-order each UAV's waypoints with the
                                    ///< energy-aware planner (extension)
                                    ///< instead of the serpentine order.
  fault::FaultPlan faults;          ///< Injected fault plan (disabled by default).
  int rescue_rounds = 1;            ///< Graceful degradation: reassign waypoints
                                    ///< left uncovered by the primary fleet to
                                    ///< fresh UAVs, up to this many rounds
                                    ///< (0 disables; no-op when all covered).
  data::SampleSink* sample_sink = nullptr;  ///< Live streaming hook: every
                                    ///< collected sample is pushed here during
                                    ///< the deterministic UAV-order merge, so a
                                    ///< sink (e.g. ingest::IngestPipeline) sees
                                    ///< exactly the final dataset's row stream,
                                    ///< in order. Not owned; may be null.
                                    ///< Called on the campaign thread.
};

/// Per-waypoint campaign coverage, aggregated across the fleet and any rescue
/// rounds.
struct WaypointCoverage {
  std::size_t uav = 0;             ///< Original owner (index into assignments).
  std::size_t waypoint_index = 0;  ///< Index into that UAV's assignment list.
  geom::Vec3 position;
  bool covered = false;      ///< Samples stored, or the scan reported empty air.
  bool rescued = false;      ///< Covered by a rescue mission, not the owner.
  std::size_t samples = 0;   ///< Samples stored for this waypoint (all rounds).
  std::size_t attempts = 0;  ///< Scan attempts spent on it (all rounds).
};

/// Campaign outcome.
struct CampaignResult {
  data::Dataset dataset;
  std::vector<UavMissionStats> uav_stats;
  std::vector<std::vector<geom::Vec3>> assignments;  ///< Waypoints per UAV
                                                     ///< (rescue UAVs appended).
  std::vector<WaypointCoverage> coverage;  ///< One entry per grid waypoint.

  /// Waypoints that remain uncovered after every rescue round.
  [[nodiscard]] std::vector<WaypointCoverage> uncovered_waypoints() const;
};

/// Runs the campaign against a scenario. UAV ids are assigned so that UAV 0
/// ("drone A") covers the highest-coordinate slab along the split axis (the
/// building-core side) and the last UAV covers the lowest slab, matching the
/// paper's drone A / drone B layout.
[[nodiscard]] CampaignResult run_campaign(const radio::Scenario& scenario,
                                          const CampaignConfig& config, util::Rng& rng);

}  // namespace remgen::mission
