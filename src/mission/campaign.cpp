#include "mission/campaign.hpp"

#include "mission/planner.hpp"

#include <algorithm>
#include <utility>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::mission {

namespace {

/// Single source for per-mission reporting: the Info log line and the
/// campaign.* metrics both read the same UavMissionStats.
void record_mission_stats(const UavMissionStats& stats) {
  util::logf(util::LogLevel::Info, "campaign",
             "uav {}: {} waypoints, {} scans, {} samples, active {:.1f}s", stats.uav_id,
             stats.waypoints_commanded, stats.scans_completed, stats.samples_collected,
             stats.active_time_s);
  REMGEN_COUNTER_ADD("campaign.missions", 1);
  REMGEN_COUNTER_ADD("campaign.waypoints_commanded", stats.waypoints_commanded);
  REMGEN_COUNTER_ADD("campaign.scans_completed", stats.scans_completed);
  REMGEN_COUNTER_ADD("campaign.samples_collected", stats.samples_collected);
  REMGEN_COUNTER_ADD("campaign.tx_queue_drops", stats.tx_queue_drops);
  if (stats.aborted_on_battery) REMGEN_COUNTER_ADD("campaign.battery_aborts", 1);
  if (obs::enabled()) {
    // Per-UAV metric names are dynamic, so they bypass the caching macros.
    obs::registry()
        .gauge(util::format("campaign.uav_{}.active_time_s", stats.uav_id))
        .set(stats.active_time_s);
    obs::registry()
        .gauge(util::format("campaign.uav_{}.battery_remaining_fraction", stats.uav_id))
        .set(stats.battery_remaining_fraction);
  }
}

/// One UAV's schedulable unit: its slab index plus the RNG pre-forked from
/// the campaign stream in UAV order, so the parent stream is consumed exactly
/// as the sequential implementation consumed it.
struct MissionTask {
  std::size_t uav;
  geom::Vec3 start;  ///< Floor position beneath the slab's pre-planning front.
  util::Rng rng;
};

/// What a mission produces; merged back into CampaignResult in UAV order.
struct MissionOutcome {
  UavMissionStats stats;
  data::Dataset dataset;
};

}  // namespace

CampaignResult run_campaign(const radio::Scenario& scenario, const CampaignConfig& config,
                            util::Rng& rng) {
  REMGEN_EXPECTS(config.uav_count > 0);
  REMGEN_EXPECTS(!config.receivers.empty());
  obs::Span campaign_span("campaign");
  campaign_span.arg("uav_count", config.uav_count);
  CampaignResult result;

  const std::vector<geom::Vec3> waypoints =
      generate_waypoint_grid(scenario.scan_volume(), config.grid);
  std::vector<std::vector<geom::Vec3>> slabs =
      split_waypoints_by_axis(waypoints, config.split_axis, config.uav_count);

  // UAV 0 (drone A) takes the highest slab along the split axis.
  std::reverse(slabs.begin(), slabs.end());
  result.assignments = slabs;

  const std::vector<uwb::Anchor> anchors =
      config.anchor_count == 8
          ? uwb::corner_anchors(scenario.scan_volume())
          : uwb::corner_anchors_subset(scenario.scan_volume(), config.anchor_count);

  // Sequential pre-pass in UAV order: route planning and RNG forking both
  // touch shared state (the slabs and the campaign RNG stream), and the fork
  // order is part of the determinism contract — the forked streams must match
  // what a threads=1 run hands each UAV.
  std::vector<MissionTask> tasks;
  tasks.reserve(slabs.size());
  for (std::size_t u = 0; u < slabs.size(); ++u) {
    if (slabs[u].empty()) continue;
    // Each UAV starts on the floor beneath its (pre-planning) first waypoint.
    geom::Vec3 start = slabs[u].front();
    start.z = 0.0;
    if (config.optimize_route) {
      geom::Vec3 airborne_start = start;
      airborne_start.z = config.mission.takeoff_height_m;
      slabs[u] = plan_route(slabs[u], airborne_start);
      result.assignments[u] = slabs[u];  // keep the report in sync
    }
    tasks.push_back(MissionTask{u, start, rng.fork(util::format("uav-{}", u))});
  }

  // Missions are independent given their pre-forked RNGs: each task owns its
  // UAV, base station, and dataset, and writes only its own outcome slot.
  std::vector<MissionOutcome> outcomes = exec::parallel_map(
      tasks.size(),
      [&](std::size_t t) {
        MissionTask& task = tasks[t];
        const std::size_t u = task.uav;
        util::Rng& uav_rng = task.rng;
        std::unique_ptr<uwb::PositioningSystem> positioning;
        if (config.positioning == PositioningKind::Lighthouse) {
          positioning = std::make_unique<lighthouse::LighthouseSystem>(
              lighthouse::standard_two_station_setup(scenario.scan_volume()),
              &scenario.floorplan(), config.lighthouse, uav_rng.fork("lighthouse"));
        } else {
          positioning = std::make_unique<uwb::LocoPositioningSystem>(
              anchors, &scenario.floorplan(), config.uav.lps, uav_rng.fork("lps"));
        }
        std::unique_ptr<uav::RemReceiverDeck> deck;
        if (config.receivers[u % config.receivers.size()] == ReceiverKind::Ble) {
          deck = std::make_unique<uav::BleScannerDeck>(scenario.ble_environment(),
                                                       config.ble_deck,
                                                       uav_rng.fork("ble-deck"));
        }
        uav::Crazyflie uav(static_cast<int>(u), scenario.environment(),
                           std::move(positioning), config.uav, task.start, uav_rng,
                           std::move(deck));
        // Give the deck time to finish its AT handshake before the mission.
        for (int i = 0; i < 100; ++i) uav.step(config.mission.tick_s);

        BaseStation station(config.mission);
        MissionOutcome outcome;
        outcome.stats = station.run_mission(uav, slabs[u], outcome.dataset);
        return outcome;
      },
      /*chunk=*/1);

  // Merge in UAV index order: the dataset (and the log/metric stream) is
  // byte-identical to the sequential run regardless of mission scheduling.
  for (MissionOutcome& outcome : outcomes) {
    record_mission_stats(outcome.stats);
    result.uav_stats.push_back(outcome.stats);
    result.dataset.append(outcome.dataset);
  }
  return result;
}

}  // namespace remgen::mission
