#include "mission/campaign.hpp"

#include "mission/planner.hpp"

#include <algorithm>
#include <utility>

#include "data/sink.hpp"
#include "exec/parallel.hpp"
#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::mission {

namespace {

/// Single source for per-mission reporting: the Info log line and the
/// campaign.* metrics both read the same UavMissionStats.
void record_mission_stats(const UavMissionStats& stats) {
  util::logf(util::LogLevel::Info, "campaign",
             "uav {}: {} waypoints, {} scans, {} samples, active {:.1f}s", stats.uav_id,
             stats.waypoints_commanded, stats.scans_completed, stats.samples_collected,
             stats.active_time_s);
  REMGEN_COUNTER_ADD("campaign.missions", 1);
  REMGEN_COUNTER_ADD("campaign.waypoints_commanded", stats.waypoints_commanded);
  REMGEN_COUNTER_ADD("campaign.scans_completed", stats.scans_completed);
  REMGEN_COUNTER_ADD("campaign.samples_collected", stats.samples_collected);
  REMGEN_COUNTER_ADD("campaign.tx_queue_drops", stats.tx_queue_drops);
  if (stats.aborted_on_battery) REMGEN_COUNTER_ADD("campaign.battery_aborts", 1);
  if (obs::enabled()) {
    // Per-UAV metric names are dynamic, so they bypass the caching macros.
    obs::registry()
        .gauge(util::format("campaign.uav_{}.active_time_s", stats.uav_id))
        .set(stats.active_time_s);
    obs::registry()
        .gauge(util::format("campaign.uav_{}.battery_remaining_fraction", stats.uav_id))
        .set(stats.battery_remaining_fraction);
  }
}

/// One UAV's schedulable unit: its slab index plus the RNG pre-forked from
/// the campaign stream in UAV order, so the parent stream is consumed exactly
/// as the sequential implementation consumed it.
struct MissionTask {
  std::size_t uav;
  geom::Vec3 start;  ///< Floor position beneath the slab's pre-planning front.
  util::Rng rng;
};

/// What a mission produces; merged back into CampaignResult in UAV order.
struct MissionOutcome {
  UavMissionStats stats;
  data::Dataset dataset;
};

}  // namespace

std::vector<WaypointCoverage> CampaignResult::uncovered_waypoints() const {
  std::vector<WaypointCoverage> open;
  for (const WaypointCoverage& c : coverage) {
    if (!c.covered) open.push_back(c);
  }
  return open;
}

CampaignResult run_campaign(const radio::Scenario& scenario, const CampaignConfig& config,
                            util::Rng& rng) {
  REMGEN_EXPECTS(config.uav_count > 0);
  REMGEN_EXPECTS(!config.receivers.empty());
  REMGEN_EXPECTS(config.rescue_rounds >= 0);
  obs::Span campaign_span("campaign");
  REMGEN_PROFILE_PHASE("campaign.run");
  campaign_span.arg("uav_count", config.uav_count);
  CampaignResult result;

  // Distribute the campaign fault plan into the per-UAV component configs.
  uav::CrazyflieConfig uav_config = config.uav;
  apply_fault_plan(config.faults, uav_config);

  const std::vector<geom::Vec3> waypoints =
      generate_waypoint_grid(scenario.scan_volume(), config.grid);
  std::vector<std::vector<geom::Vec3>> slabs =
      split_waypoints_by_axis(waypoints, config.split_axis, config.uav_count);

  // UAV 0 (drone A) takes the highest slab along the split axis.
  std::reverse(slabs.begin(), slabs.end());
  result.assignments = slabs;

  const std::vector<uwb::Anchor> anchors =
      config.anchor_count == 8
          ? uwb::corner_anchors(scenario.scan_volume())
          : uwb::corner_anchors_subset(scenario.scan_volume(), config.anchor_count);

  // One mission, start to finish: builds the positioning stack, the deck and
  // the UAV, waits out the AT handshake, then flies the waypoint list. Shared
  // by the primary fleet and the rescue rounds.
  auto run_one = [&](std::size_t uav_id, const std::vector<geom::Vec3>& wps,
                     const geom::Vec3& start, util::Rng uav_rng) {
    // Bind this thread to the UAV's flight-recorder stream for the whole
    // mission (sound because parallel_map runs each task start-to-finish on
    // one thread, chunk=1).
    flightlog::MissionScope recorder_scope(static_cast<std::int32_t>(uav_id));
    std::unique_ptr<uwb::PositioningSystem> positioning;
    if (config.positioning == PositioningKind::Lighthouse) {
      positioning = std::make_unique<lighthouse::LighthouseSystem>(
          lighthouse::standard_two_station_setup(scenario.scan_volume()),
          &scenario.floorplan(), config.lighthouse, uav_rng.fork("lighthouse"));
    } else {
      positioning = std::make_unique<uwb::LocoPositioningSystem>(
          anchors, &scenario.floorplan(), uav_config.lps, uav_rng.fork("lps"));
    }
    std::unique_ptr<uav::RemReceiverDeck> deck;
    if (config.receivers[uav_id % config.receivers.size()] == ReceiverKind::Ble) {
      deck = std::make_unique<uav::BleScannerDeck>(scenario.ble_environment(), config.ble_deck,
                                                   uav_rng.fork("ble-deck"));
    }
    uav::Crazyflie uav(static_cast<int>(uav_id), scenario.environment(), std::move(positioning),
                       uav_config, start, uav_rng, std::move(deck));
    // Give the deck time to finish its AT handshake before the mission.
    for (int i = 0; i < 100; ++i) uav.step(config.mission.tick_s);

    BaseStation station(config.mission);
    MissionOutcome outcome;
    outcome.stats = station.run_mission(uav, wps, outcome.dataset);
    return outcome;
  };

  // Sequential pre-pass in UAV order: route planning and RNG forking both
  // touch shared state (the slabs and the campaign RNG stream), and the fork
  // order is part of the determinism contract — the forked streams must match
  // what a threads=1 run hands each UAV.
  std::vector<MissionTask> tasks;
  tasks.reserve(slabs.size());
  for (std::size_t u = 0; u < slabs.size(); ++u) {
    if (slabs[u].empty()) continue;
    // Each UAV starts on the floor beneath its (pre-planning) first waypoint.
    geom::Vec3 start = slabs[u].front();
    start.z = 0.0;
    if (config.optimize_route) {
      geom::Vec3 airborne_start = start;
      airborne_start.z = config.mission.takeoff_height_m;
      slabs[u] = plan_route(slabs[u], airborne_start);
      result.assignments[u] = slabs[u];  // keep the report in sync
    }
    tasks.push_back(MissionTask{u, start, rng.fork(util::format("uav-{}", u))});
  }

  // Missions are independent given their pre-forked RNGs: each task owns its
  // UAV, base station, and dataset, and writes only its own outcome slot.
  std::vector<MissionOutcome> outcomes;
  {
    REMGEN_PROFILE_PHASE("campaign.missions");
    outcomes = exec::parallel_map(
        tasks.size(),
        [&](std::size_t t) {
          MissionTask& task = tasks[t];
          return run_one(task.uav, slabs[task.uav], task.start, std::move(task.rng));
        },
        /*chunk=*/1, "campaign.mission");
  }

  // Merge in UAV index order: the dataset (and the log/metric stream) is
  // byte-identical to the sequential run regardless of mission scheduling.
  for (std::size_t t = 0; t < outcomes.size(); ++t) {
    MissionOutcome& outcome = outcomes[t];
    const std::size_t u = tasks[t].uav;
    record_mission_stats(outcome.stats);
    result.uav_stats.push_back(outcome.stats);
    result.dataset.append(outcome.dataset);
    if (config.sample_sink != nullptr) {
      config.sample_sink->push_batch(outcome.dataset.samples());
    }
    for (const WaypointReport& report : outcome.stats.waypoint_reports) {
      WaypointCoverage c;
      c.uav = u;
      c.waypoint_index = report.waypoint_index;
      c.position = slabs[u][report.waypoint_index];
      c.covered = report.covered;
      c.samples = report.samples;
      c.attempts = report.attempts;
      result.coverage.push_back(c);
    }
  }

  // Graceful degradation: waypoints the primary fleet left uncovered (lost
  // telemetry, battery aborts) are reassigned to fresh UAVs. Every decision
  // here reads only the ordered merge above, so the rescue rounds — and the
  // campaign RNG stream — are identical across thread counts, and a fault-free
  // campaign takes the exact code path it always did.
  std::size_t healthy = 0;
  for (const UavMissionStats& s : result.uav_stats) {
    if (!s.aborted_on_battery) ++healthy;
  }
  std::size_t next_uav_id = config.uav_count;
  for (int round = 1; round <= config.rescue_rounds; ++round) {
    std::vector<std::size_t> open;  // indices into result.coverage
    for (std::size_t c = 0; c < result.coverage.size(); ++c) {
      if (!result.coverage[c].covered) open.push_back(c);
    }
    if (open.empty()) break;

    obs::Span rescue_span("campaign.rescue_round");
    REMGEN_PROFILE_PHASE("campaign.rescue_round");
    rescue_span.arg("round", round);
    rescue_span.arg("open_waypoints", open.size());
    REMGEN_FLIGHTLOG_CAMPAIGN(flightlog::EventKind::RescueRound,
                              flightlog::CampaignEvent{round, open.size(), 0, 0, "rescue"});
    util::logf(util::LogLevel::Info, "campaign",
               "rescue round {}: {} uncovered waypoints, {} healthy uavs", round, open.size(),
               healthy);

    std::vector<geom::Vec3> open_positions;
    open_positions.reserve(open.size());
    for (std::size_t c : open) open_positions.push_back(result.coverage[c].position);
    const std::size_t rescue_fleet = std::max<std::size_t>(1, healthy);
    std::vector<std::vector<geom::Vec3>> rescue_slabs =
        split_waypoints_by_axis(open_positions, config.split_axis, rescue_fleet);
    rescue_slabs.erase(
        std::remove_if(rescue_slabs.begin(), rescue_slabs.end(),
                       [](const std::vector<geom::Vec3>& s) { return s.empty(); }),
        rescue_slabs.end());

    // Sequential pre-pass again: fork order is part of the determinism
    // contract, and rescue forks happen only when a rescue actually runs.
    std::vector<MissionTask> rescue_tasks;
    rescue_tasks.reserve(rescue_slabs.size());
    for (std::size_t k = 0; k < rescue_slabs.size(); ++k) {
      geom::Vec3 start = rescue_slabs[k].front();
      start.z = 0.0;
      rescue_tasks.push_back(MissionTask{next_uav_id + k, start,
                                         rng.fork(util::format("rescue-{}-{}", round, k))});
    }

    std::vector<MissionOutcome> rescue_outcomes = exec::parallel_map(
        rescue_tasks.size(),
        [&](std::size_t t) {
          MissionTask& task = rescue_tasks[t];
          return run_one(task.uav, rescue_slabs[t], task.start, std::move(task.rng));
        },
        /*chunk=*/1, "campaign.rescue");

    for (std::size_t k = 0; k < rescue_outcomes.size(); ++k) {
      MissionOutcome& outcome = rescue_outcomes[k];
      record_mission_stats(outcome.stats);
      REMGEN_COUNTER_ADD("campaign.rescue_missions", 1);
      result.uav_stats.push_back(outcome.stats);
      result.dataset.append(outcome.dataset);
      if (config.sample_sink != nullptr) {
        config.sample_sink->push_batch(outcome.dataset.samples());
      }
      result.assignments.push_back(rescue_slabs[k]);
      for (const WaypointReport& report : outcome.stats.waypoint_reports) {
        const geom::Vec3& pos = rescue_slabs[k][report.waypoint_index];
        for (std::size_t c : open) {
          WaypointCoverage& cov = result.coverage[c];
          if (cov.covered || cov.position.x != pos.x || cov.position.y != pos.y ||
              cov.position.z != pos.z) {
            continue;
          }
          cov.attempts += report.attempts;
          cov.samples += report.samples;
          if (report.covered) {
            cov.covered = true;
            cov.rescued = true;
            REMGEN_COUNTER_ADD("campaign.waypoints_rescued", 1);
          }
          break;
        }
      }
    }
    next_uav_id += rescue_slabs.size();
  }

  std::size_t uncovered_final = 0;
  std::size_t rescued_final = 0;
  for (const WaypointCoverage& c : result.coverage) {
    if (!c.covered) ++uncovered_final;
    if (c.rescued) ++rescued_final;
  }
  REMGEN_COUNTER_ADD("campaign.waypoints_uncovered", uncovered_final);
  // The authoritative closing entry: tallies that match WaypointCoverage even
  // for waypoints an aborted mission never commanded.
  REMGEN_FLIGHTLOG_CAMPAIGN(
      flightlog::EventKind::CoverageSummary,
      flightlog::CampaignEvent{0, result.coverage.size(),
                               result.coverage.size() - uncovered_final, rescued_final,
                               "final"});
  if (obs::enabled()) {
    obs::registry().gauge("campaign.coverage_fraction")
        .set(result.coverage.empty()
                 ? 1.0
                 : 1.0 - static_cast<double>(uncovered_final) /
                             static_cast<double>(result.coverage.size()));
  }
  if (uncovered_final > 0) {
    util::logf(util::LogLevel::Warn, "campaign", "{} waypoints remain uncovered",
               uncovered_final);
  }
  return result;
}

}  // namespace remgen::mission
