#include "mission/base_station.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/quoted.hpp"

namespace remgen::mission {

BaseStation::BaseStation(const MissionConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.tick_s > 0.0);
  REMGEN_EXPECTS(config.scan_window_s > 0.0);
}

void BaseStation::drain_telemetry(uav::Crazyflie& uav, data::Dataset& out) {
  for (const uav::CrtpPacket& packet : uav.link().base_receive(uav.now())) {
    if (packet.port != "tlm") continue;
    std::istringstream in(packet.payload);
    std::string kind;
    in >> kind;
    if (kind == "state") {
      geom::Vec3 p;
      double battery;
      std::string mode;
      if (in >> p.x >> p.y >> p.z >> battery >> mode) {
        last_battery_fraction_ = battery;
        // Record the discharge curve at 5%-of-charge steps, not every state
        // packet — the recorder never needs 2 Hz battery samples.
        if (flightlog::enabled() && last_logged_battery_fraction_ - battery >= 0.05) {
          last_logged_battery_fraction_ = battery;
          flightlog::emit_at(flightlog::EventKind::BatteryState, uav.now(),
                             flightlog::BatteryEvent{battery, false});
        }
      }
    } else if (kind == "scanmeta") {
      int wp;
      geom::Vec3 p;
      std::size_t n;
      if (in >> wp >> p.x >> p.y >> p.z >> n) {
        last_scan_waypoint_ = wp;
        last_scan_position_ = p;
        last_scan_tuple_count_ = n;
      }
    } else if (kind == "scanres") {
      // The SSID is a quoted field (it may contain spaces or be empty for a
      // hidden network), matching the UAV-side framing.
      int wp;
      std::string ssid;
      int rssi;
      std::string mac_text;
      int channel;
      if ((in >> wp) && util::read_quoted_field(in, ssid) &&
          (in >> rssi >> mac_text >> channel)) {
        const auto mac = radio::MacAddress::parse(mac_text);
        if (!mac || wp != last_scan_waypoint_) {
          if (flightlog::enabled()) {
            flightlog::emit_at(flightlog::EventKind::ScanresDropped, uav.now(),
                               flightlog::SampleEvent{wp, mac ? mac->to_string() : std::string{},
                                                      static_cast<double>(rssi),
                                                      !mac ? "bad_mac" : "stale_waypoint"});
          }
          continue;
        }
        data::Sample sample;
        sample.position = last_scan_position_;
        sample.ssid = ssid;
        sample.rss_dbm = rssi;
        sample.mac = *mac;
        sample.channel = channel;
        sample.timestamp_s = uav.now();
        sample.uav_id = uav.id();
        sample.waypoint_index = wp;
        out.add(std::move(sample));
        ++samples_this_mission_;
        if (wp >= 0 && static_cast<std::size_t>(wp) < samples_per_waypoint_.size()) {
          ++samples_per_waypoint_[static_cast<std::size_t>(wp)];
        }
        if (flightlog::enabled()) {
          flightlog::emit_at(flightlog::EventKind::ScanresAccepted, uav.now(),
                             flightlog::SampleEvent{wp, mac->to_string(),
                                                    static_cast<double>(rssi), {}});
        }
      } else {
        REMGEN_COUNTER_ADD("mission.malformed_scanres", 1);
        REMGEN_FLIGHTLOG_AT(flightlog::EventKind::ScanresDropped, uav.now(),
                            flightlog::SampleEvent{-1, {}, 0.0, "malformed"});
      }
    }
  }
}

long long BaseStation::phase_ticks(double duration) const {
  // Integer tick counts: the old `for (t = 0; t < duration; t += tick_s)`
  // pattern accumulated floating-point error, so a 4 s phase at 0.01 s ticks
  // could run 399 or 401 iterations depending on the values involved.
  long long ticks = std::llround(duration / config_.tick_s);
  if (duration > 0.0 && ticks == 0) ticks = 1;
  return ticks;
}

long long BaseStation::ticks_per_setpoint() const {
  return std::max<long long>(1, std::llround(config_.setpoint_period_s / config_.tick_s));
}

bool BaseStation::scan_complete(std::size_t i) const {
  return last_scan_waypoint_ == static_cast<int>(i) &&
         (samples_per_waypoint_[i] > 0 || last_scan_tuple_count_ == 0);
}

void BaseStation::fly_phase(uav::Crazyflie& uav, const geom::Vec3& setpoint, double duration,
                            data::Dataset& out) {
  const long long ticks = phase_ticks(duration);
  const long long setpoint_every = ticks_per_setpoint();
  for (long long k = 0; k < ticks; ++k) {
    if (k % setpoint_every == 0) {
      uav.link().base_send({"cmd", util::format("goto {:.4f} {:.4f} {:.4f}", setpoint.x,
                                                setpoint.y, setpoint.z)},
                           uav.now());
    }
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
  }
}

void BaseStation::wait_phase(uav::Crazyflie& uav, double duration, data::Dataset& out) {
  const long long ticks = phase_ticks(duration);
  for (long long k = 0; k < ticks; ++k) {
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
  }
}

UavMissionStats BaseStation::run_mission(uav::Crazyflie& uav,
                                         const std::vector<geom::Vec3>& waypoints,
                                         data::Dataset& out) {
  UavMissionStats stats;
  stats.uav_id = uav.id();
  last_battery_fraction_ = 1.0;
  // Above any real fraction, so the first state packet always logs one
  // BatteryState baseline event.
  last_logged_battery_fraction_ = 2.0;
  last_scan_waypoint_ = -1;
  last_scan_tuple_count_ = 0;
  samples_this_mission_ = 0;
  samples_per_waypoint_.assign(waypoints.size(), 0);
  stats.waypoint_reports.resize(waypoints.size());
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    stats.waypoint_reports[i].waypoint_index = i;
  }

  obs::set_sim_time(uav.now());
  obs::Span mission_span("campaign.uav_mission");
  mission_span.arg("uav", uav.id());
  mission_span.arg("waypoints", waypoints.size());

  const double mission_start = uav.now();
  const std::size_t scans_before = uav.completed_scans();

  // Take off.
  uav.link().base_send({"cmd", util::format("takeoff {:.2f}", config_.takeoff_height_m)},
                       uav.now());
  geom::Vec3 hover = uav.estimated_position();
  hover.z = config_.takeoff_height_m;
  {
    REMGEN_SPAN("mission.takeoff");
    fly_phase(uav, hover, config_.takeoff_time_s, out);
  }

  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    if (last_battery_fraction_ < config_.battery_abort_fraction) {
      stats.aborted_on_battery = true;
      REMGEN_FLIGHTLOG_AT(flightlog::EventKind::BatteryState, uav.now(),
                          flightlog::BatteryEvent{last_battery_fraction_, true});
      util::logf(util::LogLevel::Info, "base-station",
                 "uav {}: battery at {:.0f}%, aborting after {} waypoints", uav.id(),
                 last_battery_fraction_ * 100.0, i);
      break;
    }
    const geom::Vec3& wp = waypoints[i];
    ++stats.waypoints_commanded;

    obs::Span wp_span("campaign.waypoint");
    wp_span.arg("uav", uav.id());
    wp_span.arg("index", i);

    // (ii) fly to the waypoint. With adaptive timing the leg duration comes
    // from the actual leg length; the paper's fixed 4 s otherwise.
    double fly_time = config_.fly_time_s;
    if (config_.adaptive_leg_timing) {
      const geom::Vec3 from = i == 0 ? uav.estimated_position() : waypoints[i - 1];
      fly_time = config_.leg_timing.fly_time_s(from.distance_to(wp));
    }
    {
      REMGEN_SPAN("mission.fly_leg");
      fly_phase(uav, wp, fly_time, out);
    }
    REMGEN_FLIGHTLOG_AT(flightlog::EventKind::WaypointArrive, uav.now(),
                        flightlog::WaypointEvent{static_cast<std::int32_t>(i), wp});

    int attempts_used = 0;
    for (int attempt = 0; attempt <= config_.scan_retries; ++attempt) {
      obs::Span scan_span("campaign.scan");
      scan_span.arg("waypoint", i);
      scan_span.arg("attempt", attempt);
      ++attempts_used;

      // Exponential backoff between attempts: a stalled or faulted deck needs
      // time to self-heal before another scan command can succeed.
      if (attempt > 0 && config_.scan_retry_backoff_s > 0.0) {
        const double backoff =
            std::min(config_.scan_retry_backoff_s * std::pow(2.0, attempt - 1),
                     config_.scan_retry_backoff_max_s);
        REMGEN_COUNTER_ADD("mission.scan_retry_backoffs", 1);
        REMGEN_FLIGHTLOG_AT(
            flightlog::EventKind::ScanBackoff, uav.now(),
            flightlog::ScanEvent{static_cast<std::int32_t>(i), attempt, backoff});
        fly_phase(uav, wp, backoff, out);
      }

      // (iii) initiate the on-demand scan.
      REMGEN_FLIGHTLOG_AT(flightlog::EventKind::ScanAttempt, uav.now(),
                          flightlog::ScanEvent{static_cast<std::int32_t>(i), attempt, 0.0});
      uav.link().base_send({"cmd", util::format("scan {}", i)}, uav.now());
      fly_phase(uav, wp, config_.scan_command_lead_s, out);

      // (iv) shut down the Crazyradio while the scan runs.
      if (config_.radio_off_during_scan) {
        uav.link().set_radio_enabled(false, uav.now());
        wait_phase(uav, config_.scan_window_s, out);
        // (v) restart the radio after the scan.
        uav.link().set_radio_enabled(true, uav.now());
      } else {
        fly_phase(uav, wp, config_.scan_window_s, out);
      }

      // (vi) fetch/parse/store results (they flush from the CRTP TX queue).
      fly_phase(uav, wp, config_.fetch_time_s, out);

      // Scan watchdog: an injected stall keeps the deck busy well past the
      // nominal window; hold position and keep draining until the results
      // land or the watchdog budget runs out.
      if (config_.scan_watchdog_s > 0.0 && !scan_complete(i)) {
        REMGEN_COUNTER_ADD("mission.scan_watchdog_waits", 1);
        REMGEN_FLIGHTLOG_AT(flightlog::EventKind::ScanWatchdog, uav.now(),
                            flightlog::ScanEvent{static_cast<std::int32_t>(i), attempt,
                                                 config_.scan_watchdog_s});
        const long long ticks = phase_ticks(config_.scan_watchdog_s);
        const long long setpoint_every = ticks_per_setpoint();
        for (long long k = 0; k < ticks && !scan_complete(i); ++k) {
          if (k % setpoint_every == 0) {
            uav.link().base_send({"cmd", util::format("goto {:.4f} {:.4f} {:.4f}", wp.x, wp.y,
                                                      wp.z)},
                                 uav.now());
          }
          uav.step(config_.tick_s);
          drain_telemetry(uav, out);
        }
      }

      // The scan command, its metadata or its results can all be lost on air.
      // Retry unless stored samples (or a legitimately empty scan) prove the
      // waypoint was actually covered — metadata arriving is NOT enough, as
      // the scanmeta packet regularly survives a flush that dropped every
      // scanres behind it.
      if (scan_complete(i)) break;
      if (attempt < config_.scan_retries) {
        REMGEN_COUNTER_ADD("mission.scan_retries", 1);
        REMGEN_FLIGHTLOG_AT(flightlog::EventKind::ScanRetry, uav.now(),
                            flightlog::ScanEvent{static_cast<std::int32_t>(i), attempt, 0.0});
      }
    }
    REMGEN_HISTOGRAM_OBSERVE("mission.scan_attempts", attempts_used, {1, 2, 3, 4});

    WaypointReport& report = stats.waypoint_reports[i];
    report.commanded = true;
    report.attempts = static_cast<std::size_t>(attempts_used);
    report.samples = samples_per_waypoint_[i];
    report.reported_empty =
        last_scan_waypoint_ == static_cast<int>(i) && last_scan_tuple_count_ == 0;
    report.covered = report.samples > 0 || report.reported_empty;
    REMGEN_FLIGHTLOG_AT(flightlog::EventKind::WaypointLeave, uav.now(),
                        flightlog::WaypointEvent{static_cast<std::int32_t>(i), wp,
                                                 report.samples, report.attempts,
                                                 report.covered});
    if (!report.covered) {
      REMGEN_COUNTER_ADD("mission.waypoints_uncovered", 1);
      util::logf(util::LogLevel::Warn, "base-station",
                 "uav {}: waypoint {} uncovered after {} attempts", uav.id(), i, attempts_used);
    }
  }

  // Land and shut down.
  REMGEN_SPAN("mission.land");
  const long long landing_ticks = phase_ticks(config_.landing_time_s);
  const long long setpoint_every = ticks_per_setpoint();
  long long landed_ticks = 0;
  for (long long k = 0; k < landing_ticks; ++k) {
    if (k % setpoint_every == 0) uav.link().base_send({"cmd", "land"}, uav.now());
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
    if (!uav.flying()) {
      ++landed_ticks;
      if (static_cast<double>(landed_ticks) * config_.tick_s > 0.2) break;
    }
  }
  uav.link().base_send({"cmd", "stop"}, uav.now());
  wait_phase(uav, 0.1, out);

  stats.active_time_s = uav.now() - mission_start;
  stats.scans_completed = uav.completed_scans() - scans_before;
  stats.samples_collected = samples_this_mission_;
  stats.tx_queue_drops = uav.link().tx_queue_drops();
  stats.battery_remaining_fraction = uav.battery().fraction_remaining();
  return stats;
}

}  // namespace remgen::mission
