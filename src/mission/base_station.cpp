#include "mission/base_station.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::mission {

BaseStation::BaseStation(const MissionConfig& config) : config_(config) {
  REMGEN_EXPECTS(config.tick_s > 0.0);
  REMGEN_EXPECTS(config.scan_window_s > 0.0);
}

void BaseStation::drain_telemetry(uav::Crazyflie& uav, data::Dataset& out) {
  for (const uav::CrtpPacket& packet : uav.link().base_receive(uav.now())) {
    if (packet.port != "tlm") continue;
    std::istringstream in(packet.payload);
    std::string kind;
    in >> kind;
    if (kind == "state") {
      geom::Vec3 p;
      double battery;
      std::string mode;
      if (in >> p.x >> p.y >> p.z >> battery >> mode) last_battery_fraction_ = battery;
    } else if (kind == "scanmeta") {
      int wp;
      geom::Vec3 p;
      std::size_t n;
      if (in >> wp >> p.x >> p.y >> p.z >> n) {
        last_scan_waypoint_ = wp;
        last_scan_position_ = p;
      }
    } else if (kind == "scanres") {
      int wp;
      std::string ssid;
      int rssi;
      std::string mac_text;
      int channel;
      if (in >> wp >> ssid >> rssi >> mac_text >> channel) {
        const auto mac = radio::MacAddress::parse(mac_text);
        if (!mac || wp != last_scan_waypoint_) continue;
        data::Sample sample;
        sample.position = last_scan_position_;
        sample.ssid = ssid;
        sample.rss_dbm = rssi;
        sample.mac = *mac;
        sample.channel = channel;
        sample.timestamp_s = uav.now();
        sample.uav_id = uav.id();
        sample.waypoint_index = wp;
        out.add(std::move(sample));
        ++samples_this_mission_;
      }
    }
  }
}

void BaseStation::fly_phase(uav::Crazyflie& uav, const geom::Vec3& setpoint, double duration,
                            data::Dataset& out) {
  double next_setpoint = 0.0;
  for (double t = 0.0; t < duration; t += config_.tick_s) {
    if (t >= next_setpoint) {
      uav.link().base_send({"cmd", util::format("goto {:.4f} {:.4f} {:.4f}", setpoint.x,
                                                setpoint.y, setpoint.z)},
                           uav.now());
      next_setpoint = t + config_.setpoint_period_s;
    }
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
  }
}

void BaseStation::wait_phase(uav::Crazyflie& uav, double duration, data::Dataset& out) {
  for (double t = 0.0; t < duration; t += config_.tick_s) {
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
  }
}

UavMissionStats BaseStation::run_mission(uav::Crazyflie& uav,
                                         const std::vector<geom::Vec3>& waypoints,
                                         data::Dataset& out) {
  UavMissionStats stats;
  stats.uav_id = uav.id();
  last_battery_fraction_ = 1.0;
  last_scan_waypoint_ = -1;
  samples_this_mission_ = 0;

  obs::set_sim_time(uav.now());
  obs::Span mission_span("campaign.uav_mission");
  mission_span.arg("uav", uav.id());
  mission_span.arg("waypoints", waypoints.size());

  const double mission_start = uav.now();
  const std::size_t scans_before = uav.completed_scans();

  // Take off.
  uav.link().base_send({"cmd", util::format("takeoff {:.2f}", config_.takeoff_height_m)},
                       uav.now());
  geom::Vec3 hover = uav.estimated_position();
  hover.z = config_.takeoff_height_m;
  {
    REMGEN_SPAN("mission.takeoff");
    fly_phase(uav, hover, config_.takeoff_time_s, out);
  }

  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    if (last_battery_fraction_ < config_.battery_abort_fraction) {
      stats.aborted_on_battery = true;
      util::logf(util::LogLevel::Info, "base-station",
                 "uav {}: battery at {:.0f}%, aborting after {} waypoints", uav.id(),
                 last_battery_fraction_ * 100.0, i);
      break;
    }
    const geom::Vec3& wp = waypoints[i];
    ++stats.waypoints_commanded;

    obs::Span wp_span("campaign.waypoint");
    wp_span.arg("uav", uav.id());
    wp_span.arg("index", i);

    // (ii) fly to the waypoint. With adaptive timing the leg duration comes
    // from the actual leg length; the paper's fixed 4 s otherwise.
    double fly_time = config_.fly_time_s;
    if (config_.adaptive_leg_timing) {
      const geom::Vec3 from = i == 0 ? uav.estimated_position() : waypoints[i - 1];
      fly_time = config_.leg_timing.fly_time_s(from.distance_to(wp));
    }
    {
      REMGEN_SPAN("mission.fly_leg");
      fly_phase(uav, wp, fly_time, out);
    }

    int attempts_used = 0;
    for (int attempt = 0; attempt <= config_.scan_retries; ++attempt) {
      obs::Span scan_span("campaign.scan");
      scan_span.arg("waypoint", i);
      scan_span.arg("attempt", attempt);
      ++attempts_used;

      // (iii) initiate the on-demand scan.
      uav.link().base_send({"cmd", util::format("scan {}", i)}, uav.now());
      fly_phase(uav, wp, config_.scan_command_lead_s, out);

      // (iv) shut down the Crazyradio while the scan runs.
      if (config_.radio_off_during_scan) {
        uav.link().set_radio_enabled(false, uav.now());
        wait_phase(uav, config_.scan_window_s, out);
        // (v) restart the radio after the scan.
        uav.link().set_radio_enabled(true, uav.now());
      } else {
        fly_phase(uav, wp, config_.scan_window_s, out);
      }

      // (vi) fetch/parse/store results (they flush from the CRTP TX queue).
      fly_phase(uav, wp, config_.fetch_time_s, out);

      // The scan command or its results can be lost on air; retry if this
      // waypoint produced no metadata.
      if (last_scan_waypoint_ == static_cast<int>(i)) break;
    }
    REMGEN_HISTOGRAM_OBSERVE("mission.scan_attempts", attempts_used, {1, 2, 3, 4});
  }

  // Land and shut down.
  REMGEN_SPAN("mission.land");
  double landed_for = 0.0;
  for (double t = 0.0; t < config_.landing_time_s; t += config_.tick_s) {
    if (static_cast<int>(t / config_.setpoint_period_s) !=
        static_cast<int>((t - config_.tick_s) / config_.setpoint_period_s) ||
        t == 0.0) {
      uav.link().base_send({"cmd", "land"}, uav.now());
    }
    uav.step(config_.tick_s);
    drain_telemetry(uav, out);
    if (!uav.flying()) {
      landed_for += config_.tick_s;
      if (landed_for > 0.2) break;
    }
  }
  uav.link().base_send({"cmd", "stop"}, uav.now());
  wait_phase(uav, 0.1, out);

  stats.active_time_s = uav.now() - mission_start;
  stats.scans_completed = uav.completed_scans() - scans_before;
  stats.samples_collected = samples_this_mission_;
  stats.tx_queue_drops = uav.link().tx_queue_drops();
  stats.battery_remaining_fraction = uav.battery().fraction_remaining();
  return stats;
}

}  // namespace remgen::mission
