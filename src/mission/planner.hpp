// Energy-aware route planning over waypoint sets.
//
// The paper flies a fixed serpentine order with a constant 4 s per leg and
// notes the UAVs "were expected to operate at their operating limits". This
// module squeezes that budget: it orders waypoints to minimise total travel
// (nearest-neighbour construction + 2-opt improvement) and derives per-leg
// flight times from the actual leg lengths instead of a worst-case constant,
// so a battery charge covers more scans.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec3.hpp"
#include "uav/battery.hpp"

namespace remgen::mission {

/// Total length of a route (sum of consecutive leg lengths), starting from
/// optional `start` (ignored when nullptr).
[[nodiscard]] double route_length(const std::vector<geom::Vec3>& route,
                                  const geom::Vec3* start = nullptr);

/// Greedy nearest-neighbour ordering of `waypoints`, beginning with the one
/// closest to `start`.
[[nodiscard]] std::vector<geom::Vec3> nearest_neighbor_route(
    const std::vector<geom::Vec3>& waypoints, const geom::Vec3& start);

/// 2-opt improvement: repeatedly reverses sub-tours while that shortens the
/// route. `max_rounds` bounds the passes over the route. The returned route
/// is a permutation of the input and never longer.
[[nodiscard]] std::vector<geom::Vec3> two_opt(std::vector<geom::Vec3> route,
                                              const geom::Vec3& start, int max_rounds = 16);

/// Convenience: nearest-neighbour + 2-opt.
[[nodiscard]] std::vector<geom::Vec3> plan_route(const std::vector<geom::Vec3>& waypoints,
                                                 const geom::Vec3& start);

/// Per-leg flight time for a leg of the given length: cruise at
/// `cruise_speed_mps` plus `settle_time_s` to damp into a hover, clamped to
/// at least `min_leg_s`.
struct LegTiming {
  double cruise_speed_mps = 0.8;
  double settle_time_s = 1.2;
  double min_leg_s = 1.5;

  [[nodiscard]] double fly_time_s(double leg_length_m) const;
};

/// Predicted energy/time cost of a mission over a route.
struct MissionEstimate {
  double flight_time_s = 0.0;   ///< Take-off to landing.
  double charge_mah = 0.0;      ///< Battery charge consumed.
  bool feasible = false;        ///< Fits the usable battery charge.
};

/// Estimates a mission's duration and charge use from the route geometry, a
/// per-waypoint scan cost, and the battery model.
[[nodiscard]] MissionEstimate estimate_mission(const std::vector<geom::Vec3>& route,
                                               const geom::Vec3& start,
                                               const LegTiming& timing,
                                               double scan_time_s,
                                               const uav::BatteryConfig& battery);

}  // namespace remgen::mission
