// The base-station client: the C++ counterpart of the paper's custom Python
// application built on the Crazyflie Python library.
//
// For every configured waypoint it (i) keeps feeding position setpoints to
// fly the UAV there, (ii) initiates an on-demand scan, (iii) shuts down the
// Crazyradio while the scan is running, (iv) restarts the radio after the
// scan, (v) fetches, parses and stores the results, and finally lands the
// UAV. Multiple UAVs are flown sequentially with matching waypoint sets.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mission/planner.hpp"
#include "uav/crazyflie.hpp"

namespace remgen::mission {

/// Per-mission timing/behaviour parameters.
struct MissionConfig {
  double takeoff_height_m = 1.0;
  double takeoff_time_s = 3.0;
  double fly_time_s = 4.0;        ///< The paper's 4 s per leg.
  bool adaptive_leg_timing = false;  ///< Derive per-leg flight time from the
                                     ///< leg length (extension) instead of
                                     ///< the fixed fly_time_s.
  LegTiming leg_timing;           ///< Used when adaptive_leg_timing is set.
  double scan_command_lead_s = 0.15;  ///< Gap between scan command and radio-off.
  double scan_window_s = 3.0;     ///< The paper's 3 s radio-off scan window.
  double fetch_time_s = 0.8;      ///< Result-collection window after radio-on.
  double landing_time_s = 4.0;
  double setpoint_period_s = 0.2; ///< Client setpoint feed rate.
  bool radio_off_during_scan = true;  ///< The paper's default mitigation.
  int scan_retries = 1;           ///< Re-issue a scan whose results never arrived.
  double scan_retry_backoff_s = 0.0;  ///< First retry backoff (doubles per retry;
                                      ///< 0 disables backoff).
  double scan_retry_backoff_max_s = 2.0;  ///< Backoff ceiling.
  double scan_watchdog_s = 0.0;   ///< Extra wait for a late/stalled scan before
                                  ///< declaring the attempt failed (0 disables).
  double battery_abort_fraction = 0.10;  ///< Land below this reported charge.
  double tick_s = 0.01;           ///< Co-simulation step.
};

/// Coverage accounting for one assigned waypoint.
struct WaypointReport {
  std::size_t waypoint_index = 0;  ///< Index into the mission's waypoint list.
  bool commanded = false;    ///< The UAV was sent there (false after an abort).
  bool covered = false;      ///< Samples arrived, or the scan reported empty air.
  bool reported_empty = false;  ///< Scan completed and legitimately found no APs.
  std::size_t samples = 0;   ///< Samples stored for this waypoint.
  std::size_t attempts = 0;  ///< Scan attempts spent on this waypoint.
};

/// Outcome of one single-UAV mission.
struct UavMissionStats {
  int uav_id = -1;
  double active_time_s = 0.0;      ///< Takeoff to motors-off.
  std::size_t waypoints_commanded = 0;
  std::size_t scans_completed = 0;
  std::size_t samples_collected = 0;
  bool aborted_on_battery = false;
  std::size_t tx_queue_drops = 0;  ///< Scan telemetry lost to queue overflow.
  double battery_remaining_fraction = 1.0;
  std::vector<WaypointReport> waypoint_reports;  ///< One entry per waypoint.
};

/// Drives one UAV at a time through its waypoint list.
class BaseStation {
 public:
  explicit BaseStation(const MissionConfig& config);

  /// Runs a complete mission: take off, visit every waypoint (fly + scan +
  /// fetch), land. Collected samples are appended to `out`. The UAV object
  /// is stepped by this call (co-simulation).
  UavMissionStats run_mission(uav::Crazyflie& uav, const std::vector<geom::Vec3>& waypoints,
                              data::Dataset& out);

  [[nodiscard]] const MissionConfig& config() const noexcept { return config_; }

 private:
  /// Steps the UAV for `duration` while re-sending `setpoint` at the client
  /// rate; drains telemetry into the dataset/state as it arrives.
  void fly_phase(uav::Crazyflie& uav, const geom::Vec3& setpoint, double duration,
                 data::Dataset& out);

  /// Steps the UAV for `duration` without sending anything (radio may be off).
  void wait_phase(uav::Crazyflie& uav, double duration, data::Dataset& out);

  /// Processes pending telemetry packets.
  void drain_telemetry(uav::Crazyflie& uav, data::Dataset& out);

  /// Whole number of co-simulation ticks covering `duration` (at least one
  /// for any positive duration, so short phases still step the UAV).
  [[nodiscard]] long long phase_ticks(double duration) const;

  /// Setpoint resend cadence in ticks.
  [[nodiscard]] long long ticks_per_setpoint() const;

  /// True once waypoint `i`'s scan produced stored samples — or completed and
  /// legitimately found nothing. Metadata alone is not enough: the scanmeta
  /// packet can survive a lossy flush that dropped every scanres after it.
  [[nodiscard]] bool scan_complete(std::size_t i) const;

  MissionConfig config_;

  // Per-mission parse state.
  geom::Vec3 last_scan_position_;
  int last_scan_waypoint_ = -1;
  std::size_t last_scan_tuple_count_ = 0;  ///< `n` from the latest scanmeta.
  double last_battery_fraction_ = 1.0;
  double last_logged_battery_fraction_ = 2.0;  ///< Flight-recorder 5%-step gate.
  std::size_t samples_this_mission_ = 0;
  std::vector<std::size_t> samples_per_waypoint_;  ///< Stored-sample accounting.
};

}  // namespace remgen::mission
