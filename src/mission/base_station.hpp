// The base-station client: the C++ counterpart of the paper's custom Python
// application built on the Crazyflie Python library.
//
// For every configured waypoint it (i) keeps feeding position setpoints to
// fly the UAV there, (ii) initiates an on-demand scan, (iii) shuts down the
// Crazyradio while the scan is running, (iv) restarts the radio after the
// scan, (v) fetches, parses and stores the results, and finally lands the
// UAV. Multiple UAVs are flown sequentially with matching waypoint sets.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "mission/planner.hpp"
#include "uav/crazyflie.hpp"

namespace remgen::mission {

/// Per-mission timing/behaviour parameters.
struct MissionConfig {
  double takeoff_height_m = 1.0;
  double takeoff_time_s = 3.0;
  double fly_time_s = 4.0;        ///< The paper's 4 s per leg.
  bool adaptive_leg_timing = false;  ///< Derive per-leg flight time from the
                                     ///< leg length (extension) instead of
                                     ///< the fixed fly_time_s.
  LegTiming leg_timing;           ///< Used when adaptive_leg_timing is set.
  double scan_command_lead_s = 0.15;  ///< Gap between scan command and radio-off.
  double scan_window_s = 3.0;     ///< The paper's 3 s radio-off scan window.
  double fetch_time_s = 0.8;      ///< Result-collection window after radio-on.
  double landing_time_s = 4.0;
  double setpoint_period_s = 0.2; ///< Client setpoint feed rate.
  bool radio_off_during_scan = true;  ///< The paper's default mitigation.
  int scan_retries = 1;           ///< Re-issue a scan whose results never arrived.
  double battery_abort_fraction = 0.10;  ///< Land below this reported charge.
  double tick_s = 0.01;           ///< Co-simulation step.
};

/// Outcome of one single-UAV mission.
struct UavMissionStats {
  int uav_id = -1;
  double active_time_s = 0.0;      ///< Takeoff to motors-off.
  std::size_t waypoints_commanded = 0;
  std::size_t scans_completed = 0;
  std::size_t samples_collected = 0;
  bool aborted_on_battery = false;
  std::size_t tx_queue_drops = 0;  ///< Scan telemetry lost to queue overflow.
  double battery_remaining_fraction = 1.0;
};

/// Drives one UAV at a time through its waypoint list.
class BaseStation {
 public:
  explicit BaseStation(const MissionConfig& config);

  /// Runs a complete mission: take off, visit every waypoint (fly + scan +
  /// fetch), land. Collected samples are appended to `out`. The UAV object
  /// is stepped by this call (co-simulation).
  UavMissionStats run_mission(uav::Crazyflie& uav, const std::vector<geom::Vec3>& waypoints,
                              data::Dataset& out);

  [[nodiscard]] const MissionConfig& config() const noexcept { return config_; }

 private:
  /// Steps the UAV for `duration` while re-sending `setpoint` at the client
  /// rate; drains telemetry into the dataset/state as it arrives.
  void fly_phase(uav::Crazyflie& uav, const geom::Vec3& setpoint, double duration,
                 data::Dataset& out);

  /// Steps the UAV for `duration` without sending anything (radio may be off).
  void wait_phase(uav::Crazyflie& uav, double duration, data::Dataset& out);

  /// Processes pending telemetry packets.
  void drain_telemetry(uav::Crazyflie& uav, data::Dataset& out);

  MissionConfig config_;

  // Per-mission parse state.
  geom::Vec3 last_scan_position_;
  int last_scan_waypoint_ = -1;
  double last_battery_fraction_ = 1.0;
  std::size_t samples_this_mission_ = 0;
};

}  // namespace remgen::mission
