#include "mission/planner.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace remgen::mission {

double route_length(const std::vector<geom::Vec3>& route, const geom::Vec3* start) {
  double total = 0.0;
  const geom::Vec3* previous = start;
  for (const geom::Vec3& w : route) {
    if (previous != nullptr) total += previous->distance_to(w);
    previous = &w;
  }
  return total;
}

std::vector<geom::Vec3> nearest_neighbor_route(const std::vector<geom::Vec3>& waypoints,
                                               const geom::Vec3& start) {
  std::vector<geom::Vec3> remaining = waypoints;
  std::vector<geom::Vec3> route;
  route.reserve(waypoints.size());
  geom::Vec3 cursor = start;
  while (!remaining.empty()) {
    std::size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const double d = cursor.distance_to(remaining[i]);
      if (d < best_distance) {
        best_distance = d;
        best = i;
      }
    }
    cursor = remaining[best];
    route.push_back(remaining[best]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return route;
}

std::vector<geom::Vec3> two_opt(std::vector<geom::Vec3> route, const geom::Vec3& start,
                                int max_rounds) {
  REMGEN_EXPECTS(max_rounds > 0);
  if (route.size() < 3) return route;

  auto point_before = [&](std::size_t i) -> const geom::Vec3& {
    return i == 0 ? start : route[i - 1];
  };

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      for (std::size_t j = i + 1; j < route.size(); ++j) {
        // Reversing route[i..j] replaces edges (i-1,i) and (j,j+1) with
        // (i-1,j) and (i,j+1).
        const geom::Vec3& a = point_before(i);
        const geom::Vec3& b = route[i];
        const geom::Vec3& c = route[j];
        const double removed = a.distance_to(b);
        const double added = a.distance_to(c);
        double removed_tail = 0.0;
        double added_tail = 0.0;
        if (j + 1 < route.size()) {
          removed_tail = c.distance_to(route[j + 1]);
          added_tail = b.distance_to(route[j + 1]);
        }
        if (added + added_tail + 1e-12 < removed + removed_tail) {
          std::reverse(route.begin() + static_cast<std::ptrdiff_t>(i),
                       route.begin() + static_cast<std::ptrdiff_t>(j + 1));
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return route;
}

std::vector<geom::Vec3> plan_route(const std::vector<geom::Vec3>& waypoints,
                                   const geom::Vec3& start) {
  return two_opt(nearest_neighbor_route(waypoints, start), start);
}

double LegTiming::fly_time_s(double leg_length_m) const {
  REMGEN_EXPECTS(leg_length_m >= 0.0);
  return std::max(min_leg_s, leg_length_m / cruise_speed_mps + settle_time_s);
}

MissionEstimate estimate_mission(const std::vector<geom::Vec3>& route, const geom::Vec3& start,
                                 const LegTiming& timing, double scan_time_s,
                                 const uav::BatteryConfig& battery_config) {
  MissionEstimate estimate;
  const uav::Battery battery(battery_config);

  // Take-off and landing flat costs.
  constexpr double kTakeoffLandingTime = 7.0;
  double time = kTakeoffLandingTime;
  double charge =
      battery.current_ma(true, 0.3, false) * kTakeoffLandingTime / 3600.0;

  const geom::Vec3* previous = &start;
  for (const geom::Vec3& w : route) {
    const double leg = previous->distance_to(w);
    const double fly = timing.fly_time_s(leg);
    const double speed = leg / fly;
    time += fly + scan_time_s;
    charge += battery.current_ma(true, speed, false) * fly / 3600.0;
    charge += battery.current_ma(true, 0.05, true) * scan_time_s / 3600.0;
    previous = &w;
  }
  estimate.flight_time_s = time;
  estimate.charge_mah = charge;
  estimate.feasible =
      charge <= battery_config.capacity_mah * battery_config.usable_fraction;
  return estimate;
}

}  // namespace remgen::mission
