// Waypoint planning: an evenly spread 3D grid over the scan volume, ordered
// for short flight legs, split into per-UAV assignments.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace remgen::mission {

/// Waypoint grid parameters. Defaults give the paper's 72 locations.
struct WaypointGridConfig {
  std::size_t nx = 6;
  std::size_t ny = 4;
  std::size_t nz = 3;
  double margin_m = 0.25;  ///< Stand-off from the volume boundary.
};

/// Generates nx*ny*nz waypoints evenly spread over `volume` (inset by the
/// margin), ordered serpentine within each z-layer so consecutive waypoints
/// are adjacent.
[[nodiscard]] std::vector<geom::Vec3> generate_waypoint_grid(const geom::Aabb& volume,
                                                             const WaypointGridConfig& config);

/// Splits waypoints into `groups` contiguous blocks along the given axis
/// (0=x, 1=y, 2=z): each UAV covers a spatial slab, as in the paper where
/// each of the two UAVs scanned its own half of the room. Group 0 holds the
/// lowest-coordinate slab. Within each group the original ordering is kept.
[[nodiscard]] std::vector<std::vector<geom::Vec3>> split_waypoints_by_axis(
    const std::vector<geom::Vec3>& waypoints, int axis, std::size_t groups);

}  // namespace remgen::mission
