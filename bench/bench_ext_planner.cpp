// Extension benchmark: energy-aware mission planning.
//
// The paper flies a serpentine order with a fixed 4 s per leg and reports the
// UAVs "were expected to operate at their operating limits". This bench
// compares three mission styles over the same 36-waypoint slab:
//   1. paper:    serpentine order, fixed 4 s legs;
//   2. adaptive: serpentine order, per-leg timing from leg length;
//   3. planned:  2-opt route + per-leg timing.
// Less time per battery means headroom for denser grids or longer scans.
#include <cstdio>

#include "mission/campaign.hpp"
#include "mission/planner.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  struct Style {
    const char* name;
    bool adaptive;
    bool optimize;
  };
  std::printf("%-28s %12s %14s %12s %10s\n", "mission style", "samples", "active-time",
              "batt-left", "scans");
  for (const Style style : {Style{"paper (serpentine, 4s)", false, false},
                            Style{"adaptive legs", true, false},
                            Style{"planned route + adaptive", true, true}}) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.mission.adaptive_leg_timing = style.adaptive;
    config.optimize_route = style.optimize;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

    double time = 0.0;
    double min_battery = 1.0;
    std::size_t scans = 0;
    for (const mission::UavMissionStats& s : result.uav_stats) {
      time += s.active_time_s;
      min_battery = std::min(min_battery, s.battery_remaining_fraction);
      scans += s.scans_completed;
    }
    std::printf("%-28s %12zu %10dm%02ds %11.0f%% %10zu\n", style.name, result.dataset.size(),
                static_cast<int>(time) / 60, static_cast<int>(time) % 60,
                min_battery * 100.0, scans);
  }

  // Route-length view of the same comparison.
  const auto grid = mission::generate_waypoint_grid(geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}),
                                                    mission::WaypointGridConfig{});
  const auto slabs = mission::split_waypoints_by_axis(grid, 0, 2);
  double serpentine = 0.0;
  double planned = 0.0;
  for (const auto& slab : slabs) {
    geom::Vec3 start = slab.front();
    serpentine += mission::route_length(slab, &start);
    planned += mission::route_length(mission::plan_route(slab, start), &start);
  }
  std::printf("\ntotal route length: serpentine %.1f m, planned %.1f m (%.0f%% saved)\n",
              serpentine, planned, (1.0 - planned / serpentine) * 100.0);
  std::printf("shape check: adaptive legs cut mission time substantially at identical "
              "sample yield; route planning trims the remainder\n");
  return 0;
}
