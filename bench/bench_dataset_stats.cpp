// Dataset statistics reproduction (Section III-A/B text):
//   2696 samples total (1495 by UAV A, 1201 by UAV B)
//   UAV A active 5 min 3 s, UAV B 5 min 0 s
//   73 distinct MAC addresses, 49 SSIDs, mean RSS around -73 dBm
//   preprocessing (drop MACs with < 16 samples): 2565 retained, 131 dropped
// Run across several seeds to show the statistics are stable properties of
// the simulated campaign, not a lucky draw.
#include <cstdio>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  std::printf("%6s %7s %7s %7s %6s %6s %9s %9s %8s\n", "seed", "total", "uavA", "uavB", "macs",
              "ssids", "meanRSS", "retained", "dropped");
  for (const std::uint64_t seed : {2022ull, 7ull, 99ull, 1234ull, 31415ull}) {
    util::Rng rng(seed);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    const mission::CampaignConfig config;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

    const auto per_uav = result.dataset.samples_per_uav();
    std::size_t dropped = 0;
    const data::Dataset retained = result.dataset.filter_min_samples_per_mac(16, &dropped);
    std::printf("%6llu %7zu %7zu %7zu %6zu %6zu %9.1f %9zu %8zu\n",
                static_cast<unsigned long long>(seed), result.dataset.size(),
                per_uav.count(0) ? per_uav.at(0) : 0, per_uav.count(1) ? per_uav.at(1) : 0,
                result.dataset.distinct_macs().size(), result.dataset.distinct_ssids().size(),
                result.dataset.mean_rss_dbm(), retained.size(), dropped);
  }
  std::printf("\npaper reference: total 2696 (A 1495 / B 1201), 73 MACs, 49 SSIDs, "
              "mean RSS ~-73 dBm, 2565 retained / 131 dropped\n");
  return 0;
}
