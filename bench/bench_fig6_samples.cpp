// Figure 6 reproduction: number of samples per UAV and scanned location.
//
// Paper result: UAV A collected 1495 samples, UAV B 1201, across 36 waypoints
// each; counts increase toward the building core (+x / -y), and UAV B (low-x
// half, behind the 40 cm-thicker wall segment) collects fewer per location.
// This bench runs the full two-UAV campaign and prints per-location sample
// counts as two 2D tables (waypoints projected on the x-y plane, summed over
// the three z-layers).
#include <cstdio>
#include <map>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig config;
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

  for (const mission::UavMissionStats& s : result.uav_stats) {
    std::printf("UAV %c: %zu samples over %zu waypoints (active %dm%02ds)\n",
                static_cast<char>('A' + s.uav_id), s.samples_collected, s.waypoints_commanded,
                static_cast<int>(s.active_time_s) / 60, static_cast<int>(s.active_time_s) % 60);
  }

  // Aggregate sample counts on an (x, y) grid of 0.5 m cells per UAV.
  constexpr double kCell = 0.5;
  std::map<int, std::map<std::pair<int, int>, std::size_t>> per_uav;
  for (const data::Sample& s : result.dataset.samples()) {
    const int gx = static_cast<int>(s.position.x / kCell);
    const int gy = static_cast<int>(s.position.y / kCell);
    ++per_uav[s.uav_id][{gx, gy}];
  }

  const geom::Aabb& vol = scenario.scan_volume();
  const int nx = static_cast<int>(vol.size().x / kCell) + 1;
  const int ny = static_cast<int>(vol.size().y / kCell) + 1;
  for (const auto& [uav, cells] : per_uav) {
    std::printf("\nsample count of drone %c (x ->, y v; %.1f m cells, z summed):\n",
                static_cast<char>('A' + uav), kCell);
    for (int gy = ny - 1; gy >= 0; --gy) {
      std::printf("y=%.1f |", static_cast<double>(gy) * kCell);
      for (int gx = 0; gx < nx; ++gx) {
        const auto it = cells.find({gx, gy});
        std::printf(" %4zu", it == cells.end() ? std::size_t{0} : it->second);
      }
      std::printf("\n");
    }
  }
  std::printf("\nshape check: drone A (high-x half) outcollects drone B; counts grow "
              "with +x and -y\n");
  return 0;
}
