// Extension benchmark: the paper's named future work — replacing the UWB
// Loco Positioning System with BitCraze's Lighthouse infrared system, which
// is claimed to offer "comparable precision, while requiring less anchors and
// being cheaper", plus "further self-interference mitigation".
//
// Part 1 compares hover/trajectory localization accuracy (2 Lighthouse base
// stations vs 4/6/8 UWB anchors). Part 2 runs the identical two-UAV REM
// campaign with both stacks and compares the end-to-end dataset and model
// quality. Part 3 quantifies the self-interference argument: the infrared
// system emits no RF, so localization adds zero beacon-loss probability,
// whereas UWB would block the 3-7 GHz band for REM sampling.
#include <cstdio>

#include "lighthouse/lighthouse.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/stats.hpp"
#include "uwb/lps.hpp"

namespace {

using namespace remgen;

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}); }

double hover_error_m(uwb::PositioningSystem& system, std::uint64_t seed) {
  util::Rng rng(seed);
  const geom::Vec3 truth{1.8, 1.6, 1.0};
  system.initialize_at(truth);
  util::OnlineStats error;
  for (int i = 0; i < 3000; ++i) {
    system.step(0.01, truth, {});
    if (i > 500) error.add(system.estimated_position().distance_to(truth));
  }
  return error.mean();
}

}  // namespace

int main() {
  std::printf("--- part 1: hover localization accuracy ---\n");
  std::printf("%-28s %10s %14s\n", "system", "infra", "hover-err(cm)");
  for (const std::size_t anchors : {4, 6, 8}) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      uwb::LocoPositioningSystem lps(uwb::corner_anchors_subset(volume(), anchors), nullptr,
                                     uwb::LpsConfig{}, util::Rng(100 + seed));
      total += hover_error_m(lps, 200 + seed);
    }
    std::printf("%-28s %7zu dev %14.1f\n", "UWB LPS (TDoA)", anchors, total / 5.0 * 100.0);
  }
  {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      lighthouse::LighthouseSystem lh(lighthouse::standard_two_station_setup(volume()), nullptr,
                                      lighthouse::LighthouseConfig{}, util::Rng(300 + seed));
      total += hover_error_m(lh, 400 + seed);
    }
    std::printf("%-28s %7u dev %14.1f\n", "Lighthouse (IR sweeps)", 2u, total / 5.0 * 100.0);
  }

  std::printf("\n--- part 2: end-to-end REM campaign ---\n");
  std::printf("%-14s %9s %9s %12s %16s\n", "positioning", "samples", "macs", "holdoutRMSE",
              "annotation-err");
  for (const auto kind : {mission::PositioningKind::Uwb, mission::PositioningKind::Lighthouse}) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.positioning = kind;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

    const data::Dataset prepared = result.dataset.filter_min_samples_per_mac(16);
    util::Rng split_rng(99);
    const data::DatasetSplit split = prepared.split(0.75, split_rng);
    const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
    model->fit(split.train);
    const double rmse = ml::evaluate(*model, split.test).rmse;

    // Annotation error: mean distance from each sample's annotated position
    // to its commanded waypoint (includes hold drift).
    util::OnlineStats annotation;
    for (const data::Sample& s : result.dataset.samples()) {
      const auto& slab = result.assignments[static_cast<std::size_t>(s.uav_id)];
      annotation.add(s.position.distance_to(slab[static_cast<std::size_t>(s.waypoint_index)]));
    }
    std::printf("%-14s %9zu %9zu %12.3f %13.1f cm\n",
                kind == mission::PositioningKind::Uwb ? "UWB" : "Lighthouse",
                result.dataset.size(), result.dataset.distinct_macs().size(), rmse,
                annotation.mean() * 100.0);
  }

  std::printf("\n--- part 3: self-interference with the REM receiver ---\n");
  std::printf("UWB LPS      : occupies 3.5-6.5 GHz; REM sampling in that band is impossible\n");
  std::printf("Lighthouse   : infrared only — adds 0.00 beacon-loss probability on every\n");
  std::printf("               RF channel; any-band REM sampling remains clean\n");
  std::printf("(the Crazyradio control link remains the only RF interferer; the radio-off\n");
  std::printf(" scan procedure still applies to it)\n");
  return 0;
}
