// Ablation of the paper's key design decision: automatically turning the
// Crazyradio off while the REM receiver scans.
//
// Runs the identical two-UAV campaign twice — once with the radio-off
// mitigation (the paper's default) and once leaving the radio on — and
// compares dataset size, per-scan detections, and the resulting model
// quality. The paper's Figure 5 establishes that the interference is
// significant at every Crazyradio frequency; this shows its end-to-end cost.
#include <cstdio>

#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace {

using namespace remgen;

struct Outcome {
  std::size_t samples = 0;
  double samples_per_scan = 0.0;
  std::size_t macs = 0;
  double rmse = 0.0;
};

Outcome run(bool radio_off_during_scan) {
  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  mission::CampaignConfig config;
  config.mission.radio_off_during_scan = radio_off_during_scan;
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

  Outcome out;
  out.samples = result.dataset.size();
  std::size_t scans = 0;
  for (const auto& s : result.uav_stats) scans += s.scans_completed;
  out.samples_per_scan = scans == 0 ? 0.0 : static_cast<double>(out.samples) / scans;
  out.macs = result.dataset.distinct_macs().size();

  const data::Dataset prepared = result.dataset.filter_min_samples_per_mac(16);
  util::Rng split_rng(99);
  const data::DatasetSplit split = prepared.split(0.75, split_rng);
  const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
  model->fit(split.train);
  out.rmse = ml::evaluate(*model, split.test).rmse;
  return out;
}

}  // namespace

int main() {
  const Outcome off = run(/*radio_off_during_scan=*/true);
  const Outcome on = run(/*radio_off_during_scan=*/false);

  std::printf("%-24s %12s %12s\n", "metric", "radio-off", "radio-on");
  std::printf("%-24s %12zu %12zu\n", "samples collected", off.samples, on.samples);
  std::printf("%-24s %12.1f %12.1f\n", "samples per scan", off.samples_per_scan,
              on.samples_per_scan);
  std::printf("%-24s %12zu %12zu\n", "distinct MACs", off.macs, on.macs);
  std::printf("%-24s %12.3f %12.3f\n", "kNN holdout RMSE (dBm)", off.rmse, on.rmse);
  std::printf("\nshape check: radio-off collects substantially more samples per scan and "
              "more distinct MACs\n");
  return 0;
}
