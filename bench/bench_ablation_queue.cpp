// Ablation of the paper's CRTP_TX_QUEUE_SIZE firmware change.
//
// "The CRTP_TX_QUEUE_SIZE was increased so that full scan results can be
// temporarily stored until the radio comes back online." With the stock
// (small) queue, scan-result telemetry generated during the radio-off window
// overflows and samples are silently lost. This bench sweeps the queue size
// and reports delivered samples and drop counts for the same campaign.
#include <cstdio>
#include <vector>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  std::printf("%-12s %10s %14s %12s\n", "queue-size", "samples", "queue-drops", "loss(%%)");
  std::size_t reference_samples = 0;
  for (const std::size_t queue : {128u, 64u, 32u, 16u, 8u}) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.uav.crtp.tx_queue_size = queue;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

    std::size_t drops = 0;
    for (const auto& s : result.uav_stats) drops += s.tx_queue_drops;
    if (queue == 128) reference_samples = result.dataset.size();
    const double loss =
        reference_samples == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(result.dataset.size()) / reference_samples);
    std::printf("%-12zu %10zu %14zu %12.1f\n", queue, result.dataset.size(), drops,
                loss < 0 ? 0.0 : loss);
  }
  std::printf("\nshape check: small stock queues drop a large share of each scan's results; "
              "the enlarged queue delivers everything\n");
  return 0;
}
