// Figure 5 reproduction: number of APs detected per IEEE 802.11 channel with
// the Crazyradio set at different frequencies or completely turned off.
//
// Paper protocol: the Crazyradio is run at 2400, 2425, 2450, 2475, 2500 and
// 2525 MHz; at each frequency 3 access-point scans are performed with the
// ESP-01 at a fixed position, plus 3 baseline scans with the radio off. The
// reproduced shape: the radio-off baseline detects the most APs on every
// channel, and every Crazyradio frequency significantly reduces the count,
// worst where the carrier overlaps the Wi-Fi channel.
#include <cstdio>
#include <map>
#include <vector>

#include "radio/interference.hpp"
#include "radio/scenario.hpp"
#include "util/fmt.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const radio::RadioEnvironment& env = scenario.environment();

  const geom::Vec3 position = scenario.scan_volume().center();
  constexpr double kScanDuration = 2.1;
  constexpr int kRuns = 3;
  const std::vector<double> frequencies{2400, 2425, 2450, 2475, 2500, 2525};

  // column 0 = radio off, then one column per Crazyradio frequency.
  // counts[channel][column] = average detections over kRuns.
  std::map<int, std::vector<double>> counts;
  const std::size_t columns = 1 + frequencies.size();

  auto run_scans = [&](const radio::CrazyradioInterference* interference, std::size_t column) {
    util::Rng scan_rng = rng.fork(util::format("scan-col-{}", column));
    for (int r = 0; r < kRuns; ++r) {
      for (const radio::Detection& d : env.scan(position, kScanDuration, interference, scan_rng)) {
        auto& row = counts[d.channel];
        if (row.empty()) row.assign(columns, 0.0);
        row[column] += 1.0 / kRuns;
      }
    }
  };

  run_scans(nullptr, 0);
  for (std::size_t f = 0; f < frequencies.size(); ++f) {
    radio::CrazyradioInterference interference;
    interference.set_carrier_mhz(frequencies[f]);
    interference.set_enabled(true);
    run_scans(&interference, f + 1);
  }

  std::printf("avg APs detected per 802.11 channel (3 scans each); channels with no "
              "detections omitted\n\n");
  std::printf("%-8s %8s", "channel", "off");
  for (const double f : frequencies) std::printf(" %8.0f", f);
  std::printf("\n");
  double off_total = 0.0;
  std::vector<double> on_total(frequencies.size(), 0.0);
  for (const auto& [channel, row] : counts) {
    std::printf("%-8d %8.2f", channel, row[0]);
    off_total += row[0];
    for (std::size_t f = 0; f < frequencies.size(); ++f) {
      std::printf(" %8.2f", row[f + 1]);
      on_total[f] += row[f + 1];
    }
    std::printf("\n");
  }
  std::printf("%-8s %8.2f", "total", off_total);
  for (const double t : on_total) std::printf(" %8.2f", t);
  std::printf("\n\nshape check: radio-off total should exceed every Crazyradio column\n");
  return 0;
}
