// Extension benchmark: uncertainty-driven adaptive sampling vs. the paper's
// uniform grid at an equal waypoint budget.
//
// Both strategies spend 30 waypoints (the adaptive one: 12 bootstrap + 3
// refinement flights x 6). Quality is judged against the simulator's ground
// truth — the REM's error at unvisited probe points — which is exactly the
// quantity the paper's "fundamental density limits" future work asks about.
#include <cstdio>

#include "core/adaptive.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace {

using namespace remgen;

/// REM reconstruction error against ground truth at random probe points.
double truth_rmse(const radio::Scenario& scenario, const data::Dataset& dataset,
                  std::size_t min_samples) {
  const data::Dataset prepared = dataset.filter_min_samples_per_mac(min_samples);
  if (prepared.empty()) return -1.0;
  const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
  model->fit(prepared.samples());

  const auto& env = scenario.environment();
  util::Rng probe_rng(7);
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t ap = 0; ap < env.access_points().size(); ++ap) {
    const radio::MacAddress mac = env.access_points()[ap].mac;
    bool known = false;
    for (const data::Sample& s : prepared.samples()) {
      if (s.mac == mac) {
        known = true;
        break;
      }
    }
    if (!known) continue;
    for (int i = 0; i < 30; ++i) {
      data::Sample query;
      query.mac = mac;
      query.channel = env.access_points()[ap].channel;
      query.position = {probe_rng.uniform(0.3, 3.4), probe_rng.uniform(0.3, 2.9),
                        probe_rng.uniform(0.3, 1.8)};
      const double truth = env.mean_rss_dbm(ap, query.position);
      if (truth < -95.0) continue;
      const double predicted = model->predict(query);
      se += (predicted - truth) * (predicted - truth);
      ++n;
    }
  }
  return n > 0 ? std::sqrt(se / static_cast<double>(n)) : -1.0;
}

}  // namespace

int main() {
  using namespace remgen;

  constexpr std::size_t kMinSamples = 8;

  // Strategy A: uniform 5x3x2 = 30-waypoint grid (2 sequential UAVs).
  double uniform_rmse = 0.0;
  std::size_t uniform_samples = 0;
  {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.grid = {.nx = 5, .ny = 3, .nz = 2, .margin_m = 0.3};
    config.mission.adaptive_leg_timing = true;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
    uniform_samples = result.dataset.size();
    uniform_rmse = truth_rmse(scenario, result.dataset, kMinSamples);
  }

  // Strategy B: adaptive — 12 bootstrap + 3 x 6 refinement = 30 waypoints.
  double adaptive_rmse = 0.0;
  std::size_t adaptive_samples = 0;
  std::size_t adaptive_waypoints = 0;
  double final_sigma = 0.0;
  {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    core::AdaptiveSamplingConfig config;
    const core::AdaptiveSamplingResult result =
        core::run_adaptive_campaign(scenario, config, rng);
    adaptive_samples = result.dataset.size();
    adaptive_waypoints = result.visited.size();
    final_sigma = result.final_mean_sigma_db;
    adaptive_rmse = truth_rmse(scenario, result.dataset, kMinSamples);
  }

  std::printf("%-24s %10s %9s %17s\n", "strategy", "waypnts", "samples", "truth-RMSE(dBm)");
  std::printf("%-24s %10d %9zu %17.3f\n", "uniform grid 5x3x2", 30, uniform_samples,
              uniform_rmse);
  std::printf("%-24s %10zu %9zu %17.3f\n", "adaptive (kriging sigma)", adaptive_waypoints,
              adaptive_samples, adaptive_rmse);
  std::printf("\nadaptive final mean kriging sigma: %.2f dB\n", final_sigma);
  std::printf("shape check: at an equal waypoint budget the adaptive strategy matches the "
              "uniform grid in this (spatially homogeneous) room — evidence that the "
              "paper's evenly-spread grid is near-optimal at this scale — while "
              "additionally exposing the per-location uncertainty needed for a "
              "when-to-stop criterion\n");
  return 0;
}
