// Endurance reproduction (Section III-A text): a fully loaded Crazyflie
// hovering ~1 m above ground, eight anchors in TWR mode, scanning every 8 s
// (~2 s per beacon sweep), flown until its motions become erratic.
//
// Paper result: 36 scans over 6 min 12 s (372 s). The campaign-mode figure —
// 36 waypoints with 4 s legs and 3 s scans — finished with UAV A active for
// 5 min 3 s and UAV B for 5 min 0 s, inside the endurance envelope.
#include <cstdio>

#include "uav/crazyflie.hpp"
#include "radio/scenario.hpp"
#include "uwb/anchor.hpp"
#include "util/fmt.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);

  uav::CrazyflieConfig config;
  config.lps.mode = uwb::LocalizationMode::Twr;  // the paper's endurance setup

  const geom::Vec3 start{1.8, 1.6, 0.0};
  uav::Crazyflie uav(0, scenario.environment(), &scenario.floorplan(),
                     uwb::corner_anchors(scenario.scan_volume()), config, start,
                     rng.fork("endurance-uav"));

  constexpr double kDt = 0.01;
  constexpr double kScanInterval = 8.0;
  const geom::Vec3 hover{1.8, 1.6, 1.0};

  // Boot the deck, then take off.
  for (int i = 0; i < 100; ++i) uav.step(kDt);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());

  double next_setpoint = 0.0;
  // "Periodic scanning mode with an interval of 8 sec": the next sweep starts
  // 8 s after the previous one completed (~10.3 s full cycle).
  double next_scan = 5.0;  // first scan after reaching the hover point
  double scan_retry_deadline = 1e9;
  std::size_t scans_seen = 0;
  const double t0 = uav.now();
  std::size_t scans_at_exhaustion = 0;
  double time_at_exhaustion = 0.0;

  while (uav.now() - t0 < 1200.0) {
    const double t = uav.now() - t0;
    if (t >= next_setpoint) {
      uav.link().base_send(
          {"cmd", util::format("goto {:.2f} {:.2f} {:.2f}", hover.x, hover.y, hover.z)},
          uav.now());
      next_setpoint = t + 0.2;
    }
    if (next_scan >= 0.0 && t >= next_scan) {
      uav.link().base_send({"cmd", util::format("scan {}", uav.completed_scans())}, uav.now());
      // Rearmed when the scan completes; the fallback below retries if the
      // command packet was lost on air.
      next_scan = -1.0;
      scan_retry_deadline = t + 6.0;
    }
    if (next_scan < 0.0 && t >= scan_retry_deadline && uav.completed_scans() == scans_seen) {
      uav.link().base_send({"cmd", util::format("scan {}", uav.completed_scans())}, uav.now());
      scan_retry_deadline = t + 6.0;
    }
    uav.step(kDt);
    (void)uav.link().base_receive(uav.now());  // drain telemetry
    if (uav.completed_scans() > scans_seen) {
      scans_seen = uav.completed_scans();
      next_scan = t + kScanInterval;
    }

    if (uav.erratic()) {
      scans_at_exhaustion = uav.completed_scans();
      time_at_exhaustion = t;
      break;
    }
  }

  std::printf("endurance run: battery exhausted after %dm%02ds with %zu scans completed\n",
              static_cast<int>(time_at_exhaustion) / 60,
              static_cast<int>(time_at_exhaustion) % 60, scans_at_exhaustion);
  std::printf("paper reference: 36 scans over 6m12s\n");
  std::printf("battery consumed: %.1f mAh of %.1f mAh capacity\n",
              uav.battery().consumed_mah(), uav.battery().config().capacity_mah);
  return 0;
}
