// Extension benchmark: geostatistical interpolators (IDW, ordinary kriging)
// versus the paper's estimator suite on the same campaign dataset and split.
// Kriging additionally reports calibrated per-prediction uncertainty, which
// the REM surfaces as sigma_db.
#include <cstdio>
#include <memory>

#include "mission/campaign.hpp"
#include "ml/kriging.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig campaign_config;
  const mission::CampaignResult campaign = mission::run_campaign(scenario, campaign_config, rng);
  const data::Dataset prepared = campaign.dataset.filter_min_samples_per_mac(16);

  util::Rng split_rng = rng.fork("split");
  const data::DatasetSplit split = prepared.split(0.75, split_rng);

  std::printf("%-28s %10s %10s %8s\n", "model", "RMSE(dBm)", "MAE(dBm)", "R2");
  for (const ml::ModelKind kind : ml::all_model_kinds(/*include_extensions=*/true)) {
    const std::unique_ptr<ml::Estimator> model = ml::make_model(kind);
    model->fit(split.train);
    const ml::RegressionMetrics m = ml::evaluate(*model, split.test);
    std::printf("%-28s %10.4f %10.4f %8.4f\n", ml::model_kind_name(kind), m.rmse, m.mae, m.r2);
  }

  // Kriging uncertainty calibration: fraction of test residuals within 1 and
  // 2 predicted sigmas (expect roughly 0.68 / 0.95 when calibrated).
  ml::KrigingRegressor kriging;
  kriging.fit(split.train);
  std::size_t within1 = 0;
  std::size_t within2 = 0;
  std::size_t n = 0;
  for (const data::Sample& s : split.test) {
    const auto p = kriging.predict_with_sigma(s);
    if (p.sigma <= 0.0) continue;
    const double err = std::abs(p.value - s.rss_dbm);
    if (err <= p.sigma) ++within1;
    if (err <= 2.0 * p.sigma) ++within2;
    ++n;
  }
  if (n > 0) {
    std::printf("\nkriging uncertainty calibration: %.2f within 1 sigma (ideal 0.68), "
                "%.2f within 2 sigma (ideal 0.95), n=%zu\n",
                static_cast<double>(within1) / n, static_cast<double>(within2) / n, n);
  }
  return 0;
}
