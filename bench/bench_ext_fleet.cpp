// Extension benchmark: fleet scalability.
//
// "In our system additional UAVs can be seamlessly integrated into the
// toolchain, allowing for sequential data collection and scalable REM
// generation" — and "the system can be scaled by simply adding sets of
// waypoints and above-mentioned parameters". This bench scales the waypoint
// grid and the sequential fleet together and reports wall-clock (simulated)
// campaign time, per-UAV battery headroom, and dataset size.
#include <cstdio>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  struct Config {
    std::size_t nx, ny, nz, uavs;
  };
  const std::vector<Config> configs{
      {6, 4, 3, 2},   // the paper's demo: 72 waypoints, 2 UAVs
      {6, 4, 3, 3},   // same grid, more UAVs -> battery headroom
      {8, 5, 4, 5},   // 160 waypoints
      {9, 6, 4, 6},   // 216 waypoints
  };

  std::printf("%-10s %6s %9s %9s %14s %16s %10s\n", "grid", "uavs", "waypnts", "samples",
              "campaign-time", "min-batt-left", "aborted");
  for (const Config& c : configs) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.grid.nx = c.nx;
    config.grid.ny = c.ny;
    config.grid.nz = c.nz;
    config.uav_count = c.uavs;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

    double total_time = 0.0;
    double min_battery = 1.0;
    int aborted = 0;
    for (const mission::UavMissionStats& s : result.uav_stats) {
      total_time += s.active_time_s;
      min_battery = std::min(min_battery, s.battery_remaining_fraction);
      if (s.aborted_on_battery) ++aborted;
    }
    std::printf("%zux%zux%-6zu %6zu %9zu %9zu %11dm%02ds %15.0f%% %10d\n", c.nx, c.ny, c.nz,
                c.uavs, c.nx * c.ny * c.nz, result.dataset.size(),
                static_cast<int>(total_time) / 60, static_cast<int>(total_time) % 60,
                min_battery * 100.0, aborted);
  }
  std::printf("\nshape check: adding UAVs scales waypoint capacity linearly while every "
              "flight stays inside the battery envelope\n");
  return 0;
}
