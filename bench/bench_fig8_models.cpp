// Figure 8 reproduction: RMSE of prediction for the different models.
//
// Paper protocol: the campaign dataset is preprocessed (MACs with >= 16
// samples kept, MAC one-hot encoded), split 75/25 into train/test, and each
// estimator's test RMSE is reported:
//   baseline mean-per-MAC   4.8107 dBm
//   kNN k=3 distance        (slightly better than baseline)
//   kNN one-hot x3, k=16    4.4186 dBm  (best)
//   per-MAC kNN             (comparable)
//   neural net 16 sigmoid   4.4870 dBm
// Absolute values differ on the simulated substrate; the ordering and the
// "all within ~0.5 dB" spread are the reproduced shape.
#include <cstdio>
#include <memory>

#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig campaign_config;
  const mission::CampaignResult campaign = mission::run_campaign(scenario, campaign_config, rng);

  std::size_t dropped = 0;
  const data::Dataset prepared = campaign.dataset.filter_min_samples_per_mac(16, &dropped);
  std::printf("dataset: %zu samples collected, %zu retained (%zu dropped)\n",
              campaign.dataset.size(), prepared.size(), dropped);

  util::Rng split_rng = rng.fork("split");
  const data::DatasetSplit split = prepared.split(0.75, split_rng);
  std::printf("split: %zu train / %zu test\n\n", split.train.size(), split.test.size());

  std::printf("%-28s %10s %10s %8s\n", "model", "RMSE(dBm)", "MAE(dBm)", "R2");
  std::printf("%-28s %10s %10s %8s\n", "----", "---------", "--------", "--");
  for (const ml::ModelKind kind : ml::all_model_kinds(/*include_extensions=*/false)) {
    const std::unique_ptr<ml::Estimator> model = ml::make_model(kind);
    model->fit(split.train);
    const ml::RegressionMetrics m = ml::evaluate(*model, split.test);
    std::printf("%-28s %10.4f %10.4f %8.4f\n", ml::model_kind_name(kind), m.rmse, m.mae, m.r2);
  }

  std::printf("\npaper reference: baseline 4.8107 | knn-onehot-x3-k16 4.4186 (best) | "
              "neural-net 4.4870\n");
  return 0;
}
