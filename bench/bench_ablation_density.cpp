// REM-density ablation (the paper's stated future work: "deriving the
// fundamental limitations on the density of 3D REMs").
//
// Sweeps the waypoint-grid density, runs the campaign at each density, and
// measures (a) holdout RMSE of the paper's best model and (b) REM
// reconstruction error against the simulator's ground-truth mean-RSS field at
// unvisited probe points — something only a simulation substrate can provide.
#include <cstdio>
#include <vector>

#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  struct GridSpec {
    std::size_t nx, ny, nz;
  };
  const std::vector<GridSpec> grids{{3, 2, 2}, {4, 3, 2}, {6, 4, 3}, {8, 5, 3}, {9, 6, 4}};

  std::printf("%-10s %9s %9s %12s %16s\n", "grid", "waypnts", "samples", "holdoutRMSE",
              "truth-RMSE(dBm)");
  for (const GridSpec& g : grids) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.grid.nx = g.nx;
    config.grid.ny = g.ny;
    config.grid.nz = g.nz;
    // Larger grids need more flight time than one battery provides; spread
    // the work over proportionally more UAVs in the sequential fleet.
    const std::size_t waypoints = g.nx * g.ny * g.nz;
    config.uav_count = std::max<std::size_t>(2, (waypoints + 35) / 36);
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
    if (result.dataset.empty()) continue;

    // The paper's >= 16-samples rule assumes 72 scans; scale it down for the
    // sparser grids (a MAC cannot have more samples than scans).
    const std::size_t min_samples = std::min<std::size_t>(16, std::max<std::size_t>(2, waypoints / 5));
    const data::Dataset prepared = result.dataset.filter_min_samples_per_mac(min_samples);
    if (prepared.empty()) continue;

    // Holdout RMSE.
    util::Rng split_rng(99);
    const data::DatasetSplit split = prepared.split(0.75, split_rng);
    const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
    model->fit(split.train);
    const double holdout = ml::evaluate(*model, split.test).rmse;

    // Ground-truth comparison: predict the simulator's mean RSS at random
    // unvisited points for every mapped MAC.
    const auto rem_model = ml::make_model(ml::ModelKind::KnnScaled16);
    rem_model->fit(prepared.samples());
    util::Rng probe_rng(7);
    const auto& env = scenario.environment();
    double se = 0.0;
    std::size_t n = 0;
    // Index APs by MAC once.
    for (std::size_t ap = 0; ap < env.access_points().size(); ++ap) {
      const auto& access_point = env.access_points()[ap];
      // Only evaluate MACs the model knows.
      bool known = false;
      for (const data::Sample& s : prepared.samples()) {
        if (s.mac == access_point.mac) {
          known = true;
          break;
        }
      }
      if (!known) continue;
      for (int i = 0; i < 40; ++i) {
        data::Sample query;
        query.mac = access_point.mac;
        query.channel = access_point.channel;
        query.position = {probe_rng.uniform(0.3, 3.4), probe_rng.uniform(0.3, 2.9),
                          probe_rng.uniform(0.3, 1.8)};
        const double truth = env.mean_rss_dbm(ap, query.position);
        if (truth < -95.0) continue;  // below what the system could ever observe
        const double predicted = rem_model->predict(query);
        se += (predicted - truth) * (predicted - truth);
        ++n;
      }
    }
    const double truth_rmse = n > 0 ? std::sqrt(se / static_cast<double>(n)) : 0.0;

    std::printf("%zux%zux%-4zu %9zu %9zu %12.3f %16.3f\n", g.nx, g.ny, g.nz, waypoints,
                result.dataset.size(), holdout, truth_rmse);
  }
  std::printf("\nshape check: truth-RMSE falls with sampling density and saturates — the "
              "fundamental density limit the paper's future work targets\n");
  return 0;
}
