// Hyperparameter grid search reproduction (Section III-B): the paper tunes
// kNN with "a grid search considering an exhaustive set of hyperparameters",
// finding metric=minkowski p=2, weights=distance, n_neighbors=3 for the plain
// feature set, and one-hot-scale 3 with n_neighbors=16 for the scaled
// variant. This bench runs the same search on the simulated campaign data and
// prints the validation surface.
#include <cstdio>
#include <memory>

#include "mission/campaign.hpp"
#include "ml/grid_search.hpp"
#include "ml/knn.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig campaign_config;
  const mission::CampaignResult campaign = mission::run_campaign(scenario, campaign_config, rng);
  const data::Dataset prepared = campaign.dataset.filter_min_samples_per_mac(16);
  util::Rng split_rng = rng.fork("split");
  const data::DatasetSplit split = prepared.split(0.75, split_rng);

  // The paper's grid: weights x n_neighbors x minkowski-p x one-hot scale.
  std::vector<ml::KnnConfig> candidates;
  for (const auto weights : {ml::KnnWeights::Uniform, ml::KnnWeights::Distance}) {
    for (const std::size_t k : {1u, 3u, 5u, 8u, 16u, 32u}) {
      for (const double p : {1.0, 2.0}) {
        for (const double scale : {1.0, 3.0, 10.0}) {
          ml::KnnConfig config;
          config.weights = weights;
          config.n_neighbors = k;
          config.minkowski_p = p;
          config.features.mac_onehot_scale = scale;
          candidates.push_back(config);
        }
      }
    }
  }

  util::Rng search_rng = rng.fork("grid-search");
  const auto result = ml::grid_search(
      candidates,
      [](const ml::KnnConfig& config) { return std::make_unique<ml::KnnRegressor>(config); },
      split.train, /*validation_fraction=*/0.25, search_rng);

  std::printf("%-10s %4s %4s %7s %12s\n", "weights", "k", "p", "scale", "val-RMSE");
  for (const auto& point : result.evaluated) {
    std::printf("%-10s %4zu %4.0f %7.1f %12.4f%s\n",
                point.config.weights == ml::KnnWeights::Distance ? "distance" : "uniform",
                point.config.n_neighbors, point.config.minkowski_p,
                point.config.features.mac_onehot_scale, point.validation_rmse,
                point.validation_rmse == result.best_rmse ? "  <-- best" : "");
  }

  // Test performance of the winner.
  ml::KnnRegressor best(result.best);
  best.fit(split.train);
  std::printf("\nbest config test RMSE: %.4f dBm (%s)\n",
              ml::evaluate(best, split.test).rmse, best.name().c_str());
  std::printf("paper reference: weights=distance, p=2 selected; scaled one-hot with larger k "
              "outperformed the plain configuration\n");
  return 0;
}
