// Performance microbenchmarks (google-benchmark): the hot paths of the
// toolchain — propagation queries, full scans, EKF steps, kNN prediction
// (brute force vs KD-tree), neural-net epochs, kriging solves, and REM
// rasterisation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "ingest/pipeline.hpp"
#include "mission/campaign.hpp"
#include "ml/grid_search.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "ml/model_zoo.hpp"
#include "ml/neural_net.hpp"
#include "obs/export.hpp"
#include "radio/scenario.hpp"
#include "serve/engine.hpp"
#include "store/snapshot.hpp"
#include "util/log.hpp"
#include "uwb/lps.hpp"

namespace {

using namespace remgen;

/// Shared fixture state, built once.
struct Fixture {
  util::Rng rng{2022};
  radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  data::Dataset dataset;

  Fixture() {
    mission::CampaignConfig config;
    util::Rng campaign_rng = rng.fork("campaign");
    dataset = mission::run_campaign(scenario, config, campaign_rng)
                  .dataset.filter_min_samples_per_mac(16);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_PropagationMeanRss(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& env = f.scenario.environment();
  util::Rng rng(1);
  std::size_t ap = 0;
  for (auto _ : state) {
    const geom::Vec3 p{rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.0, 2.1)};
    benchmark::DoNotOptimize(env.mean_rss_dbm(ap, p));
    ap = (ap + 1) % env.access_points().size();
  }
}
BENCHMARK(BM_PropagationMeanRss);

void BM_FullScan(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& env = f.scenario.environment();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.scan({1.8, 1.6, 1.0}, 2.1, nullptr, rng));
  }
}
BENCHMARK(BM_FullScan);

void BM_EkfStepWithUpdate(benchmark::State& state) {
  Fixture& f = fixture();
  uwb::LpsConfig config;
  uwb::LocoPositioningSystem lps(
      uwb::corner_anchors(f.scenario.scan_volume()), nullptr, config, util::Rng(3));
  lps.initialize_at({1.8, 1.6, 1.0});
  for (auto _ : state) {
    lps.step(0.01, {1.8, 1.6, 1.0}, {});
  }
}
BENCHMARK(BM_EkfStepWithUpdate);

void BM_KnnPredictBrute(benchmark::State& state) {
  Fixture& f = fixture();
  const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
  model->fit(f.dataset.samples());
  const data::Sample& query = f.dataset.samples().front();
  for (auto _ : state) benchmark::DoNotOptimize(model->predict(query));
}
BENCHMARK(BM_KnnPredictBrute);

void BM_KdTreeNearest16(benchmark::State& state) {
  Fixture& f = fixture();
  std::vector<geom::Vec3> points;
  for (const data::Sample& s : f.dataset.samples()) points.push_back(s.position);
  const ml::KdTree tree(points);
  util::Rng rng(4);
  for (auto _ : state) {
    const geom::Vec3 q{rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.0, 2.1)};
    benchmark::DoNotOptimize(tree.nearest(q, 16));
  }
}
BENCHMARK(BM_KdTreeNearest16);

void BM_NeuralNetTrainEpoch(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    ml::NeuralNetConfig config;
    config.epochs = 1;
    ml::NeuralNetRegressor net(config);
    net.fit(f.dataset.samples());
    benchmark::DoNotOptimize(net.final_training_loss());
  }
}
BENCHMARK(BM_NeuralNetTrainEpoch);

void BM_KrigingFit(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto model = ml::make_model(ml::ModelKind::Kriging);
    model->fit(f.dataset.samples());
    benchmark::DoNotOptimize(model.get());
  }
}
BENCHMARK(BM_KrigingFit);

/// Snapshot + engine shared by the serve benchmarks, built once.
serve::QueryEngine& serve_engine() {
  static serve::QueryEngine* engine = [] {
    Fixture& f = fixture();
    store::Snapshot snapshot;
    snapshot.dataset = f.dataset;
    auto model = ml::make_model(ml::ModelKind::PerMacKnn);
    model->fit(f.dataset.samples());
    snapshot.model = std::move(model);
    return new serve::QueryEngine(std::move(snapshot), 64 * 1024 * 1024);
  }();
  return *engine;
}

void BM_ServePointQuery(benchmark::State& state) {
  serve::QueryEngine& engine = serve_engine();
  util::Rng rng(9);
  const auto& macs = engine.macs();
  std::size_t i = 0;
  for (auto _ : state) {
    serve::Request request;
    request.id = static_cast<std::int64_t>(i);
    request.mac = macs[i % macs.size()];
    request.points.push_back(
        {rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.0, 2.1)});
    benchmark::DoNotOptimize(engine.execute(request));
    ++i;
  }
}
BENCHMARK(BM_ServePointQuery);

void BM_RemBuild25cm(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
    core::RemBuilderConfig config;
    config.voxel_m = 0.25;
    benchmark::DoNotOptimize(
        core::build_rem(f.dataset, *model, f.scenario.scan_volume(), config));
  }
}
BENCHMARK(BM_RemBuild25cm);

/// Console reporter that also accumulates one row per benchmark for the
/// BENCH_perf.json artifact. Aggregate rows (mean/median/stddev of repeated
/// runs) and errored runs are excluded so the file holds exactly one
/// wall-clock number per BENCHMARK() registration.
class PerfReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double seconds_per_iteration = 0.0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      if (run.iterations > 0) {
        row.seconds_per_iteration =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// Commit hash stamped into BENCH_perf.json: runtime env (REMGEN_GIT_COMMIT,
/// then CI's GITHUB_SHA) wins over the hash baked in at configure time, so a
/// stale build directory cannot misattribute fresh numbers.
const char* perf_commit() {
  if (const char* env = std::getenv("REMGEN_GIT_COMMIT")) return env;
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
#ifdef REMGEN_GIT_COMMIT
  return REMGEN_GIT_COMMIT;
#else
  return "unknown";
#endif
}

/// Writes the per-benchmark wall-clock report as BENCH_perf.json
/// (REMGEN_PERF_OUT overrides the path) next to BENCH_parallel.json, with
/// enough provenance — commit, thread count — to compare CI runs.
void write_perf_report(const std::vector<PerfReporter::Row>& rows) {
  const char* out_path = std::getenv("REMGEN_PERF_OUT");
  std::FILE* out = std::fopen(out_path != nullptr ? out_path : "BENCH_perf.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"commit\": \"%s\",\n  \"threads\": %zu,\n  \"benchmarks\": [\n",
               perf_commit(), exec::thread_count());
  bool first = true;
  for (const PerfReporter::Row& row : rows) {
    std::fprintf(out,
                 "%s    {\"name\": \"%s\", \"seconds_per_iteration\": %.9e, "
                 "\"iterations\": %lld}",
                 first ? "" : ",\n", row.name.c_str(), row.seconds_per_iteration,
                 static_cast<long long>(row.iterations));
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
}

/// Best-of-two wall-clock seconds for one invocation of `fn`.
double time_seconds(const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best;
}

/// Times the three parallelized paths — fleet campaign, REM voxel
/// prediction, grid search — at 1, 2 and N threads and writes the speedup
/// report as BENCH_parallel.json (REMGEN_PARALLEL_OUT overrides the path,
/// REMGEN_BENCH_THREADS the top width). Numbers are honest wall-clock on the
/// current machine: on a single hardware thread the speedup stays ~1.
void write_parallel_report() {
  Fixture& f = fixture();
  const std::size_t previous = exec::thread_count();
  std::size_t top = std::max<std::size_t>(4, exec::hardware_threads());
  if (const char* env = std::getenv("REMGEN_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) top = static_cast<std::size_t>(parsed);
  }
  std::vector<std::size_t> widths{1, 2, top};
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());

  const auto campaign = [&] {
    mission::CampaignConfig config;
    config.uav_count = 4;
    util::Rng rng(7);
    benchmark::DoNotOptimize(mission::run_campaign(f.scenario, config, rng));
  };
  const auto rem_build = [&] {
    const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
    core::RemBuilderConfig config;
    config.voxel_m = 0.25;
    benchmark::DoNotOptimize(
        core::build_rem(f.dataset, *model, f.scenario.scan_volume(), config));
  };
  const auto grid = [&] {
    std::vector<ml::KnnConfig> candidates;
    for (std::size_t k = 1; k <= 8; ++k) {
      for (const ml::KnnWeights w : {ml::KnnWeights::Uniform, ml::KnnWeights::Distance}) {
        ml::KnnConfig config;
        config.n_neighbors = k;
        config.weights = w;
        candidates.push_back(config);
      }
    }
    util::Rng rng(7);
    benchmark::DoNotOptimize(ml::grid_search(
        candidates,
        [](const ml::KnnConfig& c) { return std::make_unique<ml::KnnRegressor>(c); },
        f.dataset.samples(), 0.25, rng));
  };

  struct Path {
    const char* name;
    const std::function<void()>* fn;
  };
  const std::function<void()> fns[] = {campaign, rem_build, grid};
  const Path paths[] = {{"campaign", &fns[0]}, {"rem_build", &fns[1]}, {"grid_search", &fns[2]}};

  const char* out_path = std::getenv("REMGEN_PARALLEL_OUT");
  std::FILE* out = std::fopen(out_path != nullptr ? out_path : "BENCH_parallel.json", "w");
  if (out == nullptr) return;
  // hardware_threads lets the perf gate decide whether a parallel speedup
  // assertion is even physically possible on the recording machine.
  std::fprintf(out, "{\n  \"threads_max\": %zu,\n  \"hardware_threads\": %zu,\n  \"paths\": [\n",
               top, exec::hardware_threads());
  bool first_path = true;
  for (const Path& path : paths) {
    double t1 = 0.0;
    std::fprintf(out, "%s    {\"name\": \"%s\", \"seconds\": {", first_path ? "" : ",\n",
                 path.name);
    first_path = false;
    bool first_width = true;
    double t_top = 0.0;
    for (const std::size_t width : widths) {
      exec::set_thread_count(width);
      const double t = time_seconds(*path.fn);
      if (width == 1) t1 = t;
      t_top = t;
      std::fprintf(out, "%s\"%zu\": %.6f", first_width ? "" : ", ", width, t);
      first_width = false;
    }
    std::fprintf(out, "}, \"speedup_at_max\": %.3f}", t_top > 0.0 ? t1 / t_top : 0.0);
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  exec::set_thread_count(previous);
}

/// Deterministic JSONL workload for the serve report: a fixed mix of point,
/// best-AP, and batch queries over the fixture's MACs and scan volume.
std::string serve_workload(const std::vector<radio::MacAddress>& macs, std::size_t requests) {
  util::Rng rng(11);
  std::ostringstream out;
  char line[512];
  for (std::size_t i = 0; i < requests; ++i) {
    const double x = rng.uniform(0.0, 3.7);
    const double y = rng.uniform(0.0, 3.2);
    const double z = rng.uniform(0.0, 2.1);
    const std::string mac = macs[i % macs.size()].to_string();
    switch (i % 3) {
      case 0:
        std::snprintf(line, sizeof(line),
                      R"({"id":%zu,"type":"point","mac":"%s","x":%.6f,"y":%.6f,"z":%.6f})",
                      i, mac.c_str(), x, y, z);
        break;
      case 1:
        std::snprintf(line, sizeof(line),
                      R"({"id":%zu,"type":"point","top":3,"x":%.6f,"y":%.6f,"z":%.6f})",
                      i, x, y, z);
        break;
      default:
        std::snprintf(
            line, sizeof(line),
            R"({"id":%zu,"type":"batch","mac":"%s","points":[[%.6f,%.6f,%.6f],[%.6f,%.6f,%.6f]]})",
            i, mac.c_str(), x, y, z, 3.7 - x, 3.2 - y, 2.1 - z);
        break;
    }
    out << line << '\n';
  }
  return out.str();
}

/// Replays a fixed request stream through a fresh QueryEngine (cold cache) at
/// 1 and N threads and writes qps + latency percentiles as BENCH_serve.json
/// (REMGEN_SERVE_OUT overrides the path, REMGEN_BENCH_THREADS the top width).
void write_serve_report() {
  Fixture& f = fixture();
  const std::size_t previous = exec::thread_count();
  std::size_t top = std::max<std::size_t>(4, exec::hardware_threads());
  if (const char* env = std::getenv("REMGEN_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) top = static_cast<std::size_t>(parsed);
  }
  std::vector<std::size_t> widths{1, top};
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());

  constexpr std::size_t kRequests = 2000;
  const auto mac_set = f.dataset.distinct_macs();
  const std::vector<radio::MacAddress> macs(mac_set.begin(), mac_set.end());
  const std::string workload = serve_workload(macs, kRequests);

  const char* out_path = std::getenv("REMGEN_SERVE_OUT");
  std::FILE* out = std::fopen(out_path != nullptr ? out_path : "BENCH_serve.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"commit\": \"%s\",\n  \"requests\": %zu,\n  \"runs\": [\n",
               perf_commit(), kRequests);
  bool first = true;
  for (const std::size_t width : widths) {
    exec::set_thread_count(width);
    // Fresh engine per width: the cache starts cold, so the two runs measure
    // the same work and their qps numbers are comparable.
    store::Snapshot snapshot;
    snapshot.dataset = f.dataset;
    auto model = ml::make_model(ml::ModelKind::PerMacKnn);
    model->fit(f.dataset.samples());
    snapshot.model = std::move(model);
    const serve::QueryEngine engine(std::move(snapshot), 64 * 1024 * 1024);
    std::istringstream in(workload);
    std::ostringstream sink;
    const serve::ReplayStats stats = engine.replay_jsonl(in, sink);
    std::fprintf(out,
                 "%s    {\"threads\": %zu, \"qps\": %.1f, \"wall_seconds\": %.6f, "
                 "\"errors\": %zu, \"latency_us\": {\"p50\": %.1f, \"p90\": %.1f, "
                 "\"p99\": %.1f, \"p99.9\": %.1f}}",
                 first ? "" : ",\n", width, stats.qps, stats.wall_seconds, stats.errors,
                 stats.latency_us.p50, stats.latency_us.p90, stats.latency_us.p99,
                 stats.latency_us.p999);
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  exec::set_thread_count(previous);
}

/// Streams the fixture dataset through an IngestPipeline — push-only first
/// for raw acceptance throughput, then a two-epoch half/half split timing the
/// full and delta epoch builds — and writes BENCH_ingest.json
/// (REMGEN_INGEST_OUT overrides the path). stream_matches_batch records the
/// subsystem's core invariant as a gated metric: the final streamed snapshot
/// must be byte-identical to the one-shot batch build over the same samples.
void write_ingest_report() {
  Fixture& f = fixture();
  const std::vector<data::Sample>& samples = f.dataset.samples();

  ingest::IngestConfig config;
  config.model = ml::ModelKind::KnnScaled16;
  config.volume = f.scenario.scan_volume();
  config.cache_bytes = 4 << 20;

  // The one-shot batch reference: same filter, fresh estimator, same
  // rasteriser — the exact recipe each streamed epoch takes.
  std::string batch;
  {
    store::Snapshot snapshot;
    snapshot.dataset = f.dataset.filter_min_samples_per_mac(config.rem.min_samples_per_mac);
    auto model = ml::make_model(config.model);
    snapshot.rem.emplace(core::build_rem(f.dataset, *model, config.volume, config.rem));
    snapshot.model = std::move(model);
    std::ostringstream serialized;
    store::save_snapshot(serialized, snapshot);
    batch = std::move(serialized).str();
  }

  // Push-only throughput: live-dataset accumulation + KD-index growth, no
  // epoch trigger configured, so no build cost pollutes the number.
  const double push_seconds = time_seconds([&] {
    ingest::IngestPipeline pipeline(config);
    pipeline.push_batch(samples);
    benchmark::DoNotOptimize(pipeline.samples());
  });
  const double samples_per_sec =
      push_seconds > 0.0 ? static_cast<double>(samples.size()) / push_seconds : 0.0;

  // Two-epoch split: epoch 1 is a full REMSNAP1 over the first half, epoch 2
  // adds the rest and emits a REMDELT1 against epoch 1.
  ingest::IngestPipeline pipeline(config);
  const std::size_t half = samples.size() / 2;
  pipeline.push_batch(std::span<const data::Sample>(samples.data(), half));
  const auto t_full = std::chrono::steady_clock::now();
  const auto epoch1 = pipeline.flush();
  const double epoch_full_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_full).count();
  pipeline.push_batch(std::span<const data::Sample>(samples.data() + half, samples.size() - half));
  const auto t_delta = std::chrono::steady_clock::now();
  const auto epoch2 = pipeline.flush();
  const double epoch_delta_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_delta).count();

  const std::size_t snapshot_bytes = epoch2.has_value() ? epoch2->snapshot_bytes : 0;
  const std::size_t delta_bytes = epoch2.has_value() ? epoch2->delta_bytes : 0;
  const bool matches = epoch1.has_value() && epoch2.has_value() &&
                       pipeline.latest_snapshot_bytes() == batch;

  const char* out_path = std::getenv("REMGEN_INGEST_OUT");
  std::FILE* out = std::fopen(out_path != nullptr ? out_path : "BENCH_ingest.json", "w");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\n  \"commit\": \"%s\",\n  \"samples\": %zu,\n"
               "  \"samples_per_sec\": %.1f,\n  \"epoch_full_seconds\": %.6f,\n"
               "  \"epoch_delta_seconds\": %.6f,\n  \"snapshot_bytes\": %zu,\n"
               "  \"delta_bytes\": %zu,\n  \"delta_ratio\": %.4f,\n"
               "  \"stream_matches_batch\": %d\n}\n",
               perf_commit(), samples.size(), samples_per_sec, epoch_full_seconds,
               epoch_delta_seconds, snapshot_bytes, delta_bytes,
               snapshot_bytes > 0 ? static_cast<double>(delta_bytes) /
                                        static_cast<double>(snapshot_bytes)
                                  : 0.0,
               matches ? 1 : 0);
  std::fclose(out);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): runs with telemetry enabled and
// writes the counter/gauge/histogram state of the benchmarked hot paths as a
// BENCH_*.json-style machine-readable snapshot next to the binary
// (REMGEN_METRICS_OUT overrides the path; REMGEN_TRACE_OUT additionally
// dumps the span trace).
int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);
  // Strip the flags we consumed so google-benchmark does not reject them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--log-level") {
      ++i;  // skip the value too
      continue;
    }
    if (arg.rfind("--log-level=", 0) == 0) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  remgen::obs::set_enabled(true);
  PerfReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  write_perf_report(reporter.rows());
  write_parallel_report();
  write_serve_report();
  write_ingest_report();

  const char* metrics_out = std::getenv("REMGEN_METRICS_OUT");
  remgen::obs::export_metrics_json_file(metrics_out != nullptr
                                            ? metrics_out
                                            : "BENCH_perf_micro.metrics.json");
  if (const char* trace_out = std::getenv("REMGEN_TRACE_OUT")) {
    remgen::obs::export_trace_file(trace_out);
  }
  return 0;
}
