// Performance microbenchmarks (google-benchmark): the hot paths of the
// toolchain — propagation queries, full scans, EKF steps, kNN prediction
// (brute force vs KD-tree), neural-net epochs, kriging solves, and REM
// rasterisation.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/kdtree.hpp"
#include "ml/model_zoo.hpp"
#include "ml/neural_net.hpp"
#include "radio/scenario.hpp"
#include "uwb/lps.hpp"

namespace {

using namespace remgen;

/// Shared fixture state, built once.
struct Fixture {
  util::Rng rng{2022};
  radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  data::Dataset dataset;

  Fixture() {
    mission::CampaignConfig config;
    util::Rng campaign_rng = rng.fork("campaign");
    dataset = mission::run_campaign(scenario, config, campaign_rng)
                  .dataset.filter_min_samples_per_mac(16);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_PropagationMeanRss(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& env = f.scenario.environment();
  util::Rng rng(1);
  std::size_t ap = 0;
  for (auto _ : state) {
    const geom::Vec3 p{rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.0, 2.1)};
    benchmark::DoNotOptimize(env.mean_rss_dbm(ap, p));
    ap = (ap + 1) % env.access_points().size();
  }
}
BENCHMARK(BM_PropagationMeanRss);

void BM_FullScan(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& env = f.scenario.environment();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.scan({1.8, 1.6, 1.0}, 2.1, nullptr, rng));
  }
}
BENCHMARK(BM_FullScan);

void BM_EkfStepWithUpdate(benchmark::State& state) {
  Fixture& f = fixture();
  uwb::LpsConfig config;
  uwb::LocoPositioningSystem lps(
      uwb::corner_anchors(f.scenario.scan_volume()), nullptr, config, util::Rng(3));
  lps.initialize_at({1.8, 1.6, 1.0});
  for (auto _ : state) {
    lps.step(0.01, {1.8, 1.6, 1.0}, {});
  }
}
BENCHMARK(BM_EkfStepWithUpdate);

void BM_KnnPredictBrute(benchmark::State& state) {
  Fixture& f = fixture();
  const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
  model->fit(f.dataset.samples());
  const data::Sample& query = f.dataset.samples().front();
  for (auto _ : state) benchmark::DoNotOptimize(model->predict(query));
}
BENCHMARK(BM_KnnPredictBrute);

void BM_KdTreeNearest16(benchmark::State& state) {
  Fixture& f = fixture();
  std::vector<geom::Vec3> points;
  for (const data::Sample& s : f.dataset.samples()) points.push_back(s.position);
  const ml::KdTree tree(points);
  util::Rng rng(4);
  for (auto _ : state) {
    const geom::Vec3 q{rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.0, 2.1)};
    benchmark::DoNotOptimize(tree.nearest(q, 16));
  }
}
BENCHMARK(BM_KdTreeNearest16);

void BM_NeuralNetTrainEpoch(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    ml::NeuralNetConfig config;
    config.epochs = 1;
    ml::NeuralNetRegressor net(config);
    net.fit(f.dataset.samples());
    benchmark::DoNotOptimize(net.final_training_loss());
  }
}
BENCHMARK(BM_NeuralNetTrainEpoch);

void BM_KrigingFit(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto model = ml::make_model(ml::ModelKind::Kriging);
    model->fit(f.dataset.samples());
    benchmark::DoNotOptimize(model.get());
  }
}
BENCHMARK(BM_KrigingFit);

void BM_RemBuild25cm(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
    core::RemBuilderConfig config;
    config.voxel_m = 0.25;
    benchmark::DoNotOptimize(
        core::build_rem(f.dataset, *model, f.scenario.scan_volume(), config));
  }
}
BENCHMARK(BM_RemBuild25cm);

}  // namespace

BENCHMARK_MAIN();
