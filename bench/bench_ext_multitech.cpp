// Extension benchmark: multi-technology REM generation.
//
// The paper's modular design requirement ("a simple integration of different
// REM-sampling devices (e.g., Wi-Fi, LoRa, BLE, mmWave)... extending the REM
// capabilities beyond the traditional Wi-Fi") exercised end to end: a mixed
// fleet where UAV A carries the ESP-01 Wi-Fi deck (UART/AT) and UAV B the
// BLE observer deck (I2C registers), both integrated through the same
// four-instruction driver contract, producing one dataset and one multi-
// technology REM.
#include <cstdio>

#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);

  mission::CampaignConfig config;
  // Mixed fleet covering the full grid with each technology: 4 sequential
  // flights — two Wi-Fi slabs, two BLE slabs.
  config.uav_count = 4;
  config.receivers = {mission::ReceiverKind::Wifi, mission::ReceiverKind::Wifi,
                      mission::ReceiverKind::Ble, mission::ReceiverKind::Ble};
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

  // Wi-Fi MACs and BLE addresses are disjoint; split the dataset by looking
  // up each sample's MAC in the Wi-Fi AP list.
  std::set<radio::MacAddress> wifi_macs;
  for (const auto& ap : scenario.environment().access_points()) wifi_macs.insert(ap.mac);
  data::Dataset wifi;
  data::Dataset ble;
  for (const data::Sample& s : result.dataset.samples()) {
    (wifi_macs.count(s.mac) ? wifi : ble).add(s);
  }

  std::printf("mixed fleet: %zu UAV flights, %zu samples total\n", result.uav_stats.size(),
              result.dataset.size());
  std::printf("  wi-fi samples: %6zu from %zu APs\n", wifi.size(), wifi.distinct_macs().size());
  std::printf("  ble samples  : %6zu from %zu advertisers\n", ble.size(),
              ble.distinct_macs().size());
  if (!wifi.empty()) std::printf("  wi-fi mean RSS: %.1f dBm\n", wifi.mean_rss_dbm());
  if (!ble.empty()) std::printf("  ble mean RSS  : %.1f dBm\n", ble.mean_rss_dbm());

  // One REM over both technologies (the REM keys on transmitter MAC).
  const data::Dataset prepared = result.dataset.filter_min_samples_per_mac(8);
  const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  core::RemBuilderConfig rem_config;
  rem_config.voxel_m = 0.4;
  rem_config.min_samples_per_mac = 8;
  const core::RadioEnvironmentMap rem =
      core::build_rem(prepared, *model, scenario.scan_volume(), rem_config);
  std::size_t wifi_mapped = 0;
  std::size_t ble_mapped = 0;
  for (const radio::MacAddress& mac : rem.macs()) {
    (wifi_macs.count(mac) ? wifi_mapped : ble_mapped) += 1;
  }
  std::printf("\nmulti-technology REM: %zu transmitters mapped (%zu wi-fi, %zu ble) over a "
              "%zux%zux%zu raster\n",
              rem.macs().size(), wifi_mapped, ble_mapped, rem.geometry().nx(),
              rem.geometry().ny(), rem.geometry().nz());

  // Holdout quality per technology.
  for (const auto& [name, ds] : {std::pair<const char*, const data::Dataset&>{"wi-fi", wifi},
                                 {"ble", ble}}) {
    const data::Dataset tech = ds.filter_min_samples_per_mac(8);
    if (tech.size() < 50) continue;
    util::Rng split_rng(99);
    const data::DatasetSplit split = tech.split(0.75, split_rng);
    const auto estimator = ml::make_model(ml::ModelKind::PerMacKnn);
    estimator->fit(split.train);
    std::printf("%-6s holdout RMSE: %.3f dBm (n=%zu)\n", name,
                ml::evaluate(*estimator, split.test).rmse, tech.size());
  }
  std::printf("\nshape check: both technologies flow through the same toolchain — same "
              "mission client, same driver contract, same REM\n");
  return 0;
}
