// Figure 7 reproduction: histograms of the number of samples collected per
// 0.5 m bin along the x and y axes.
//
// Paper result: "the number of samples collected increases with an increasing
// x-coordinate and a decreasing y-coordinate" — the building core lies toward
// +x / -y.
#include <cstdio>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace {

void print_histogram(const char* axis_name,
                     const std::vector<std::pair<double, std::size_t>>& bins) {
  std::printf("\nsamples per 0.5 m bin along %s:\n", axis_name);
  std::size_t max_count = 1;
  for (const auto& [lo, count] : bins) max_count = std::max(max_count, count);
  for (const auto& [lo, count] : bins) {
    const int bar = static_cast<int>(50.0 * static_cast<double>(count) /
                                     static_cast<double>(max_count));
    std::printf("[%5.2f, %5.2f) %5zu ", lo, lo + 0.5, count);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig config;
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
  std::printf("campaign: %zu samples\n", result.dataset.size());

  const auto x_bins = result.dataset.axis_histogram(0, 0.5);
  const auto y_bins = result.dataset.axis_histogram(1, 0.5);
  print_histogram("x", x_bins);
  print_histogram("y", y_bins);

  // Quantified shape check, robust against waypoints straddling bin edges:
  // regress the per-scan sample count on the scan position along each axis.
  std::map<std::pair<int, int>, std::pair<geom::Vec3, std::size_t>> scans;
  for (const data::Sample& s : result.dataset.samples()) {
    auto& [pos, count] = scans[{s.uav_id, s.waypoint_index}];
    pos = s.position;
    ++count;
  }
  auto slope = [&](int axis) {
    double n = 0, sx = 0, sy = 0, sxy = 0, sxx = 0;
    for (const auto& [key, value] : scans) {
      const auto& [pos, count] = value;
      const double x = axis == 0 ? pos.x : pos.y;
      const double y = static_cast<double>(count);
      n += 1;
      sx += x;
      sy += y;
      sxy += x * y;
      sxx += x * x;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
  };
  std::printf("\ntrend (samples per scan, per metre): x %+.2f (expect positive), y %+.2f "
              "(expect negative)\n",
              slope(0), slope(1));
  return 0;
}
