// Ablation: how location-annotation accuracy propagates into REM quality.
//
// The paper's design requirement (i) is "accurate location-annotated
// sampling"; this quantifies why. The same campaign is run with increasingly
// degraded localization (anchor survey error and ranging noise scaled up) and
// the downstream model RMSE is measured. Only a simulation substrate can
// hold the RF world fixed while corrupting only the localization.
#include <cstdio>

#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/stats.hpp"

int main() {
  using namespace remgen;

  std::printf("%-22s %14s %12s %12s\n", "localization", "annot-err(cm)", "samples",
              "holdoutRMSE");
  struct Grade {
    const char* name;
    double survey_sigma_m;
    double noise_scale;
  };
  for (const Grade grade : {Grade{"survey 1 cm", 0.01, 1.0}, Grade{"survey 5 cm (paper)", 0.05, 1.0},
                            Grade{"survey 15 cm", 0.15, 1.0}, Grade{"survey 30 cm", 0.30, 2.0},
                            Grade{"survey 60 cm", 0.60, 4.0}}) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.uav.lps.anchor_survey_sigma_m = grade.survey_sigma_m;
    config.uav.lps.ranging.twr_noise_sigma_m *= grade.noise_scale;
    config.uav.lps.ranging.tdoa_noise_sigma_m *= grade.noise_scale;
    const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
    if (result.dataset.empty()) continue;

    // Annotation error proxy: sample position vs commanded waypoint.
    util::OnlineStats annotation;
    for (const data::Sample& s : result.dataset.samples()) {
      const auto& slab = result.assignments[static_cast<std::size_t>(s.uav_id)];
      if (static_cast<std::size_t>(s.waypoint_index) >= slab.size()) continue;
      annotation.add(s.position.distance_to(slab[static_cast<std::size_t>(s.waypoint_index)]));
    }

    const data::Dataset prepared = result.dataset.filter_min_samples_per_mac(16);
    if (prepared.size() < 100) continue;
    util::Rng split_rng(99);
    const data::DatasetSplit split = prepared.split(0.75, split_rng);
    const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
    model->fit(split.train);
    std::printf("%-22s %14.1f %12zu %12.3f\n", grade.name, annotation.mean() * 100.0,
                result.dataset.size(), ml::evaluate(*model, split.test).rmse);
  }
  std::printf("\nshape check: degrading localization inflates the spatial-model RMSE toward "
              "the baseline — accurate annotation is what the spatial models feed on\n");
  return 0;
}
