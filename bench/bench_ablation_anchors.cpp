// Localization-accuracy ablation (Section II-B claims):
//   - >= 4 anchors are required for a 3D fix;
//   - more anchors increase robustness and accuracy (Bitcraze advises >= 6);
//   - ~9 cm accuracy while hovering with 6 anchors (Chekuri & Won);
//   - TDoA is slightly more accurate than TWR and scales to multiple UAVs.
// This bench measures hover and trajectory estimation error for anchor counts
// 4/6/8 under both ranging procedures.
#include <cstdio>
#include <vector>

#include "geom/floorplan.hpp"
#include "uwb/anchor.hpp"
#include "uwb/lps.hpp"
#include "util/stats.hpp"

namespace {

using namespace remgen;

/// Runs the LPS against a ground-truth trajectory and returns position-error
/// statistics over the steady-state portion.
util::OnlineStats run_trajectory(std::size_t anchor_count, uwb::LocalizationMode mode,
                                 bool hovering, util::Rng rng) {
  const geom::Aabb volume({0, 0, 0}, {3.74, 3.20, 2.10});
  uwb::LpsConfig config;
  config.mode = mode;
  uwb::LocoPositioningSystem lps(uwb::corner_anchors_subset(volume, anchor_count), nullptr,
                                 config, rng.fork("lps"));

  const geom::Vec3 start{1.8, 1.6, 1.0};
  lps.initialize_at(start);

  util::OnlineStats error;
  constexpr double kDt = 0.01;
  geom::Vec3 truth = start;
  geom::Vec3 velocity{};
  for (int i = 0; i < 6000; ++i) {
    const double t = i * kDt;
    geom::Vec3 accel{};
    if (!hovering) {
      // Smooth figure-eight-ish sweep through the volume.
      accel = {0.5 * std::cos(0.8 * t), 0.4 * std::sin(0.5 * t), 0.15 * std::cos(0.3 * t)};
      velocity += accel * kDt;
      truth += velocity * kDt + accel * (0.5 * kDt * kDt);
      truth = volume.clamp(truth);
    } else {
      // Hover jitter.
      accel = {rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05)};
      truth += accel * (0.5 * kDt * kDt);
    }
    lps.step(kDt, truth, accel);
    if (t > 5.0) error.add(lps.estimated_position().distance_to(truth));
  }
  return error;
}

}  // namespace

int main() {
  std::printf("%-8s %-6s %-10s %12s %12s %12s\n", "anchors", "mode", "motion", "mean-err(cm)",
              "p95-err(cm)", "max-err(cm)");
  for (const std::size_t anchors : {4, 6, 8}) {
    for (const auto mode : {uwb::LocalizationMode::Twr, uwb::LocalizationMode::Tdoa}) {
      for (const bool hovering : {true, false}) {
        // Average across a few seeds for a stable estimate.
        util::OnlineStats agg;
        double p95_sum = 0.0;
        double max_err = 0.0;
        constexpr int kSeeds = 5;
        for (int s = 0; s < kSeeds; ++s) {
          util::Rng rng(1000 + static_cast<std::uint64_t>(s));
          const util::OnlineStats e = run_trajectory(anchors, mode, hovering, rng);
          agg.add(e.mean());
          p95_sum += e.mean() + 2.0 * e.stddev();
          max_err = std::max(max_err, e.max());
        }
        std::printf("%-8zu %-6s %-10s %12.1f %12.1f %12.1f\n", anchors,
                    mode == uwb::LocalizationMode::Twr ? "TWR" : "TDoA",
                    hovering ? "hover" : "moving", agg.mean() * 100.0,
                    p95_sum / kSeeds * 100.0, max_err * 100.0);
      }
    }
  }
  std::printf("\npaper reference: ~9 cm hovering accuracy with 6 anchors; more anchors "
              "improve accuracy; TDoA slightly better than TWR\n");
  std::printf("note: 4-anchor TDoA is expected to be unreliable — only three independent "
              "differences constrain a 3D position, and the real LPS requires eight "
              "anchors for its TDoA modes\n");
  return 0;
}
