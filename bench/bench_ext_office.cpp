// Extension benchmark: deployment in a new environment (design req. ii).
//
// "Straightforward deployment of the system in unknown complex indoor
// environments": the identical toolchain — anchors at the volume corners,
// waypoint grid, two-UAV sequential fleet, radio-off scans, preprocessing,
// estimator suite — is pointed at a structurally different world (an
// open-plan office floor with glazed meeting rooms, ceiling-mounted
// enterprise APs sharing corporate SSIDs across floors) with zero code
// changes, only a different Scenario.
#include <cstdio>

#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace {

using namespace remgen;

void run_environment(const char* name, const radio::Scenario& scenario, util::Rng& rng,
                     std::size_t min_samples) {
  mission::CampaignConfig config;
  // The office volume is larger; a 6x4x3 grid covers it the same way the
  // paper's grid covers the living room. Three UAVs share the 72 waypoints.
  config.uav_count = scenario.scan_volume().size().x > 4.0 ? 3 : 2;
  config.mission.adaptive_leg_timing = true;
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

  const data::Dataset& ds = result.dataset;
  std::printf("%-10s: %zu samples, %zu MACs, %zu SSIDs, mean RSS %.1f dBm\n", name, ds.size(),
              ds.distinct_macs().size(), ds.distinct_ssids().size(),
              ds.empty() ? 0.0 : ds.mean_rss_dbm());

  const data::Dataset prepared = ds.filter_min_samples_per_mac(min_samples);
  if (prepared.empty()) return;
  util::Rng split_rng(99);
  const data::DatasetSplit split = prepared.split(0.75, split_rng);
  for (const ml::ModelKind kind :
       {ml::ModelKind::BaselineMeanPerMac, ml::ModelKind::KnnScaled16, ml::ModelKind::Kriging}) {
    const auto model = ml::make_model(kind);
    model->fit(split.train);
    std::printf("  %-26s RMSE %.3f dBm\n", ml::model_kind_name(kind),
                ml::evaluate(*model, split.test).rmse);
  }
}

}  // namespace

int main() {
  using namespace remgen;

  {
    util::Rng rng(2022);
    const radio::Scenario apartment = radio::Scenario::make_apartment(rng);
    run_environment("apartment", apartment, rng, 16);
  }
  {
    util::Rng rng(2022);
    const radio::Scenario office = radio::Scenario::make_office(rng);
    run_environment("office", office, rng, 16);
  }

  std::printf("\nshape check: the same pipeline produces a usable REM in both worlds, with "
              "spatial models beating the per-MAC baseline in each — and the office's "
              "strong in-volume ceiling APs make the spatial advantage larger\n");
  return 0;
}
