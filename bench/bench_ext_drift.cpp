// Extension benchmark: REM staleness / drift detection.
//
// The paper motivates periodic REM regeneration ("the REMs can become
// obsolete due to long-term changes in the signal propagation"). This bench
// closes that loop: a full campaign builds the REM; then the environment
// changes (a router is moved across the building, another is unplugged, a
// third gets a power boost, and a brand-new AP appears); a *small* probe
// flight (12 waypoints instead of 72) is enough for the drift detector to
// pinpoint exactly which transmitters no longer match the map.
#include <cstdio>

#include "core/drift.hpp"
#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace {

using namespace remgen;

/// Runs a small probe campaign (12 waypoints, 1 UAV) against a scenario.
data::Dataset probe_flight(const radio::Scenario& scenario, std::uint64_t seed) {
  util::Rng rng(seed);
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  config.uav_count = 1;
  return mission::run_campaign(scenario, config, rng).dataset;
}

}  // namespace

int main() {
  using namespace remgen;

  // 1. Baseline world and its REM from the full 72-waypoint campaign.
  util::Rng rng(2022);
  const radio::Scenario original = radio::Scenario::make_apartment(rng);
  util::Rng campaign_rng(7);
  const mission::CampaignConfig full_config;
  const mission::CampaignResult campaign =
      mission::run_campaign(original, full_config, campaign_rng);
  const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  const core::RadioEnvironmentMap rem = core::build_rem(
      campaign.dataset, *model, original.scan_volume(), core::RemBuilderConfig{});
  std::printf("REM built from %zu samples, %zu transmitters mapped\n", campaign.dataset.size(),
              rem.macs().size());

  // 2. The world changes. Track which MACs we touched.
  std::vector<std::string> moved, unplugged, boosted;
  util::Rng variant_rng(2022);  // same seed: identical world except the edits
  const radio::Scenario changed = radio::Scenario::make_apartment(
      variant_rng, radio::ScenarioConfig{}, radio::EnvironmentConfig{},
      [&](std::vector<radio::AccessPoint>& aps) {
        // The own router moves to the opposite side of the room.
        aps[0].position = {0.4, 2.9, 0.4};
        moved.push_back(aps[0].mac.to_string());
        // A strong neighbour gets unplugged.
        aps[3].tx_power_dbm -= 60.0;
        unplugged.push_back(aps[3].mac.to_string());
        // Another neighbour upgrades to a high-power router.
        aps[5].tx_power_dbm += 8.0;
        boosted.push_back(aps[5].mac.to_string());
        // A brand-new AP appears two rooms away.
        radio::AccessPoint fresh;
        util::Rng mac_rng(424242);
        fresh.mac = radio::MacAddress::random(mac_rng);
        fresh.ssid = "new-tenant";
        fresh.channel = 6;
        fresh.tx_power_dbm = 16.0;
        fresh.position = {6.0, -2.0, 1.2};
        aps.push_back(fresh);
      });

  // 3. Control: probing the unchanged world must not flag drift.
  const core::DriftReport control = core::detect_drift(rem, probe_flight(original, 99).samples());
  std::printf("\ncontrol probe (unchanged world): %zu MACs judged, %zu drifted, stale=%s\n",
              control.judged_macs, control.drifted_macs, control.rem_stale ? "YES" : "no");

  // 4. Probing the changed world.
  const data::Dataset probe = probe_flight(changed, 99);
  const core::DriftReport report = core::detect_drift(rem, probe.samples());
  std::printf("drift probe   (changed world):   %zu MACs judged, %zu drifted, %zu unknown, "
              "stale=%s\n\n",
              report.judged_macs, report.drifted_macs, report.unknown_macs,
              report.rem_stale ? "YES" : "no");

  std::printf("%-20s %8s %12s %11s %10s %s\n", "mac", "samples", "mean-res(dB)",
              "rms-res(dB)", "drifted", "ground truth");
  auto truth_label = [&](const std::string& mac) {
    for (const auto& m : moved)
      if (m == mac) return "moved across the room";
    for (const auto& m : unplugged)
      if (m == mac) return "unplugged";
    for (const auto& m : boosted)
      if (m == mac) return "power +8 dB";
    return "";
  };
  int printed = 0;
  for (const core::MacDrift& d : report.per_mac) {
    const char* label = truth_label(d.mac.to_string());
    if (!d.drifted && label[0] == '\0' && printed >= 8) continue;
    std::printf("%-20s %8zu %12.2f %11.2f %10s %s\n", d.mac.to_string().c_str(), d.samples,
                d.mean_residual_db, d.rms_residual_db, d.drifted ? "YES" : "no", label);
    ++printed;
    if (printed >= 14) break;
  }
  for (const radio::MacAddress& mac : report.vanished) {
    std::printf("vanished: %-20s %s\n", mac.to_string().c_str(),
                truth_label(mac.to_string()));
  }
  std::printf("\nshape check: the moved/boosted transmitters top the drift table, the "
              "unplugged one is reported vanished, the new AP shows up as an unknown MAC, "
              "and the control probe stays clean\n");
  return 0;
}
